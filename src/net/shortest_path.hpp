// Dijkstra shortest paths over the topology.
//
// Used twice: (1) by the routing substrate to build per-router forwarding
// tables — our stand-in for OSPF's link-state SPF computation — and (2) by
// the middlebox controller to find each node's closest middleboxes m_x^e and
// candidate sets M_x^e (§III.B/C of the paper).
//
// Tie-breaking is deterministic: among equal-cost alternatives we prefer the
// path whose predecessor has the smaller NodeId. This pins down OSPF's
// implementation-defined equal-cost choice so runs are reproducible.
#pragma once

#include <limits>
#include <vector>

#include "net/topology.hpp"

namespace sdmbox::net {

/// Result of a single-source shortest-path computation.
struct ShortestPathTree {
  NodeId source;
  std::vector<double> distance;    // indexed by NodeId.v; infinity if unreachable
  std::vector<NodeId> predecessor; // invalid for source / unreachable
  std::vector<LinkId> via_link;    // link towards predecessor

  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  bool reachable(NodeId n) const noexcept {
    return distance[n.v] < kInfinity;
  }

  /// Node sequence source..dest inclusive; empty if unreachable.
  std::vector<NodeId> path_to(NodeId dest) const;
};

/// Dijkstra from `source`. Only router nodes forward transit traffic; non-router
/// nodes (hosts, proxies, middleboxes) are leaves — paths may start or end at
/// them but never pass through them, mirroring real stub devices.
/// `down_links` (optional, indexed by LinkId.v) excludes failed links — the
/// converged state after the routing protocol routes around a link failure.
ShortestPathTree dijkstra(const Topology& topo, NodeId source,
                          const std::vector<bool>* down_links = nullptr);

/// Shortest-path distance matrix for all nodes (row = source).
std::vector<ShortestPathTree> all_pairs_shortest_paths(const Topology& topo);

/// The k nodes from `candidates` closest to `from` (ties by NodeId), in
/// increasing distance order. Unreachable candidates are skipped; fewer than k
/// results are returned if not enough candidates are reachable.
std::vector<NodeId> k_closest(const ShortestPathTree& tree, const std::vector<NodeId>& candidates,
                              std::size_t k);

}  // namespace sdmbox::net
