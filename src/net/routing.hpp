// Forwarding tables and address resolution — the "traditional routing" substrate.
//
// This is the piece the paper deliberately does NOT modify: routers run a
// classical link-state protocol (OSPF in the paper), forwarding every packet
// toward its destination address along shortest paths, oblivious to
// middlebox policies. We model the converged state of that protocol: each
// node gets a next-hop table over all destination nodes, computed from
// per-node Dijkstra trees with deterministic equal-cost tie-breaking.
//
// AddressResolver maps packet destination addresses to topology nodes:
// exact match on device (interface) addresses first, then longest-prefix
// match over the stub subnets originated by edge routers, mirroring how OSPF
// advertises stub prefixes.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/shortest_path.hpp"
#include "net/topology.hpp"

namespace sdmbox::net {

/// Next-hop entry: neighbor to forward to and the connecting link.
struct NextHop {
  NodeId node;
  LinkId link;
  bool valid() const noexcept { return node.valid(); }
};

/// Converged forwarding state for the whole network.
class RoutingTables {
public:
  /// Build forwarding tables for every node from link-state shortest paths.
  /// `down_links` (indexed by LinkId.v) models the converged state after the
  /// routing protocol detected those link failures.
  static RoutingTables compute(const Topology& topo,
                               const std::vector<bool>* down_links = nullptr);

  /// Reconverge in place against the current link state — the "OSPF detects a
  /// link event and floods new LSAs" hook. Consumers that hold a reference to
  /// this object (e.g. a running SimNetwork) observe the new tables on their
  /// next lookup, which models routers cutting over to the freshly converged
  /// forwarding state.
  void recompute(const Topology& topo, const std::vector<bool>* down_links = nullptr) {
    *this = compute(topo, down_links);
  }

  /// Next hop at `at` towards destination node `dest`; invalid if unreachable
  /// or at == dest.
  NextHop next_hop(NodeId at, NodeId dest) const {
    SDM_CHECK(at.v < next_.size() && dest.v < next_[at.v].size());
    return next_[at.v][dest.v];
  }

  /// Shortest-path cost between two nodes (infinity if unreachable).
  double distance(NodeId from, NodeId to) const {
    SDM_CHECK(from.v < dist_.size() && to.v < dist_[from.v].size());
    return dist_[from.v][to.v];
  }

  /// Full node path from -> to (inclusive); empty if unreachable.
  std::vector<NodeId> path(NodeId from, NodeId to) const;

  std::size_t node_count() const noexcept { return next_.size(); }

private:
  // next_[u][d] = next hop at u towards d; dist_[u][d] = shortest cost.
  std::vector<std::vector<NextHop>> next_;
  std::vector<std::vector<double>> dist_;
};

/// Maps IP addresses to the topology node that terminates them.
class AddressResolver {
public:
  /// Index all device addresses and stub subnets in the topology. Stub
  /// subnets resolve to `subnet_terminal(edge_router)` — the in-path policy
  /// proxy when one is attached, else the edge router itself.
  static AddressResolver build(const Topology& topo);

  /// Resolve an address: exact device match first, then longest-prefix match
  /// over stub subnets. nullopt if nothing matches.
  std::optional<NodeId> resolve(IpAddress a) const;

  /// The edge router owning the longest-prefix stub subnet containing `a`,
  /// if any (used to locate the source/destination subnet of a flow).
  std::optional<NodeId> owning_edge_router(IpAddress a) const;

private:
  std::unordered_map<std::uint32_t, NodeId> exact_;
  // Subnets keyed by (prefix length desc, base) for longest-prefix scan.
  struct SubnetEntry {
    Prefix prefix;
    NodeId terminal;
    NodeId edge_router;
  };
  std::vector<SubnetEntry> subnets_;  // sorted by descending prefix length
};

}  // namespace sdmbox::net
