#include "net/topologies.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <numeric>

namespace sdmbox::net {

int GeneratedNetwork::subnet_index_of_proxy(NodeId proxy) const noexcept {
  for (std::size_t i = 0; i < proxies.size(); ++i) {
    if (proxies[i] == proxy) return static_cast<int>(i);
  }
  return -1;
}

IpAddress AddressPlan::next_device() {
  // 172.16.0.0/12 gives us 2^20 device addresses; allocate sequentially
  // starting at 172.16.0.1.
  ++device_count_;
  SDM_CHECK_MSG(device_count_ < (1u << 20), "device address space exhausted");
  return IpAddress((172u << 24) | (16u << 16) | device_count_);
}

AddressPlan::AddressPlan(std::uint8_t subnet_prefix_len)
    : subnet_prefix_len_(subnet_prefix_len) {
  // Slices must fit inside 10.0.0.0/8 and leave room for base+broadcast+2
  // usable hosts per subnet (random_host needs span >= 1 at /28).
  SDM_CHECK_MSG(subnet_prefix_len_ > 8 && subnet_prefix_len_ <= 28,
                "subnet prefix length must be in (8, 28]");
}

Prefix AddressPlan::next_subnet() {
  ++subnet_count_;
  SDM_CHECK_MSG(subnet_count_ <= max_subnets(), "subnet address space exhausted");
  const std::uint32_t base = (10u << 24) | (subnet_count_ << (32 - subnet_prefix_len_));
  return Prefix(IpAddress(base), subnet_prefix_len_);
}

IpAddress AddressPlan::host_in(const Prefix& subnet, std::uint32_t index) const {
  SDM_CHECK_MSG(index + 1 < (1u << (32 - subnet.length())), "host index out of subnet range");
  return IpAddress(subnet.base().value() + 1 + index);
}

namespace {

/// Attach a proxy and hosts behind an edge router; records them in the
/// GeneratedNetwork inventory. In-path (Figure 2 proxy x): hosts hang off
/// the proxy, which sits between the edge router and the subnet. Off-path
/// (Figure 2 proxy y): hosts hang off the edge router, the proxy is a leaf
/// the router loops traffic through.
void attach_stub(GeneratedNetwork& net, AddressPlan& plan, NodeId edge, std::size_t host_count,
                 const LinkParams& stub_link, ProxyMode mode) {
  const Prefix subnet = plan.next_subnet();
  const std::size_t idx = net.subnets.size();
  const NodeId proxy = net.topo.add_node(NodeKind::kPolicyProxy, "proxy" + std::to_string(idx),
                                         plan.host_in(subnet, 0));
  net.topo.add_link(edge, proxy, stub_link);
  net.topo.set_subnet(edge, subnet, mode == ProxyMode::kInPath ? proxy : edge);
  const NodeId host_attach = mode == ProxyMode::kInPath ? proxy : edge;
  std::vector<NodeId> hosts;
  for (std::size_t h = 0; h < host_count; ++h) {
    const NodeId host = net.topo.add_node(
        NodeKind::kHost, "h" + std::to_string(idx) + "." + std::to_string(h),
        plan.host_in(subnet, 1 + static_cast<std::uint32_t>(h)));
    net.topo.add_link(host_attach, host, stub_link);
    hosts.push_back(host);
  }
  net.subnets.push_back(subnet);
  net.proxies.push_back(proxy);
  net.hosts.push_back(std::move(hosts));
}

}  // namespace

GeneratedNetwork make_campus_topology(const CampusParams& params) {
  SDM_CHECK(params.gateway_count >= 1 && params.core_count >= 1 && params.edge_count >= 1);
  SDM_CHECK(params.cores_per_edge >= 1 && params.cores_per_edge <= params.core_count);
  GeneratedNetwork net;
  net.proxy_mode = params.proxy_mode;
  AddressPlan plan;

  for (std::size_t g = 0; g < params.gateway_count; ++g) {
    net.gateways.push_back(
        net.topo.add_node(NodeKind::kGatewayRouter, "gw" + std::to_string(g), plan.next_device()));
  }
  for (std::size_t c = 0; c < params.core_count; ++c) {
    const NodeId core =
        net.topo.add_node(NodeKind::kCoreRouter, "core" + std::to_string(c), plan.next_device());
    net.core_routers.push_back(core);
    // Each core router connects to both (all) gateways — §IV.A.
    for (NodeId gw : net.gateways) net.topo.add_link(core, gw, params.core_link);
  }
  for (std::size_t e = 0; e < params.edge_count; ++e) {
    const NodeId edge =
        net.topo.add_node(NodeKind::kEdgeRouter, "edge" + std::to_string(e), plan.next_device());
    net.edge_routers.push_back(edge);
    // Redundant uplinks spread round-robin across the cores.
    for (std::size_t u = 0; u < params.cores_per_edge; ++u) {
      const std::size_t c = (e * params.cores_per_edge + u) % params.core_count;
      net.topo.add_link(edge, net.core_routers[c], params.edge_link);
    }
    attach_stub(net, plan, edge, params.hosts_per_subnet, params.stub_link, params.proxy_mode);
  }
  SDM_CHECK(net.topo.is_connected());
  return net;
}

GeneratedNetwork make_waxman_topology(const WaxmanParams& params) {
  SDM_CHECK(params.core_count >= 2 && params.edge_count >= 1);
  SDM_CHECK(params.core_degree >= 1 && params.core_degree < params.core_count);
  GeneratedNetwork net;
  net.proxy_mode = params.proxy_mode;
  AddressPlan plan(params.subnet_prefix_len);
  SDM_CHECK_MSG(params.edge_count < plan.max_subnets(),
                "edge_count exceeds the subnet space; widen subnet_prefix_len");
  util::Rng rng(params.seed);

  // Place core routers at random coordinates in the region.
  std::vector<std::pair<double, double>> pos(params.core_count);
  for (auto& p : pos) p = {rng.next_double() * params.region, rng.next_double() * params.region};
  const auto dist = [&](std::size_t i, std::size_t j) {
    const double dx = pos[i].first - pos[j].first;
    const double dy = pos[i].second - pos[j].second;
    return std::sqrt(dx * dx + dy * dy);
  };
  const double scale = params.region * std::numbers::sqrt2;  // max possible distance

  for (std::size_t c = 0; c < params.core_count; ++c) {
    net.core_routers.push_back(
        net.topo.add_node(NodeKind::kCoreRouter, "core" + std::to_string(c), plan.next_device()));
  }

  // Waxman-style wiring with a fixed per-core link budget: each core draws
  // neighbors with probability weight exp(-d / (alpha * L)) until it has
  // core_degree incident core links (counting links added by earlier cores).
  std::vector<std::size_t> degree(params.core_count, 0);
  std::vector<std::vector<bool>> linked(params.core_count,
                                        std::vector<bool>(params.core_count, false));
  for (std::size_t u = 0; u < params.core_count; ++u) {
    while (degree[u] < params.core_degree) {
      double total = 0.0;
      std::vector<std::pair<std::size_t, double>> weights;
      for (std::size_t v = 0; v < params.core_count; ++v) {
        if (v == u || linked[u][v]) continue;
        const double w = std::exp(-dist(u, v) / (params.alpha * scale));
        weights.emplace_back(v, w);
        total += w;
      }
      if (weights.empty()) break;  // u already linked to everyone
      double r = rng.next_double() * total;
      std::size_t chosen = weights.back().first;
      for (const auto& [v, w] : weights) {
        if (r < w) {
          chosen = v;
          break;
        }
        r -= w;
      }
      linked[u][chosen] = linked[chosen][u] = true;
      ++degree[u];
      ++degree[chosen];
      LinkParams lp = params.core_link;
      lp.delay_us = 1.0 + dist(u, chosen) * 5.0;  // ~5 us per distance unit
      net.topo.add_link(net.core_routers[u], net.core_routers[chosen], lp);
    }
  }

  // Guarantee a connected core: union components by linking their closest pair.
  std::vector<std::size_t> comp(params.core_count);
  std::iota(comp.begin(), comp.end(), 0);
  const auto find = [&](std::size_t x) {
    while (comp[x] != x) x = comp[x] = comp[comp[x]];
    return x;
  };
  for (std::size_t u = 0; u < params.core_count; ++u) {
    for (std::size_t v = 0; v < params.core_count; ++v) {
      if (linked[u][v]) comp[find(u)] = find(v);
    }
  }
  for (;;) {
    std::size_t best_u = 0, best_v = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t u = 0; u < params.core_count; ++u) {
      for (std::size_t v = u + 1; v < params.core_count; ++v) {
        if (find(u) != find(v) && dist(u, v) < best_d) {
          best_d = dist(u, v);
          best_u = u;
          best_v = v;
        }
      }
    }
    if (best_d == std::numeric_limits<double>::infinity()) break;  // single component
    linked[best_u][best_v] = linked[best_v][best_u] = true;
    comp[find(best_u)] = find(best_v);
    LinkParams lp = params.core_link;
    lp.delay_us = 1.0 + best_d * 5.0;
    net.topo.add_link(net.core_routers[best_u], net.core_routers[best_v], lp);
  }

  // Spread edge routers evenly: core c hosts edges c, c+|cores|, c+2|cores|, ...
  for (std::size_t e = 0; e < params.edge_count; ++e) {
    const NodeId edge =
        net.topo.add_node(NodeKind::kEdgeRouter, "edge" + std::to_string(e), plan.next_device());
    net.edge_routers.push_back(edge);
    net.topo.add_link(edge, net.core_routers[e % params.core_count], params.edge_link);
    attach_stub(net, plan, edge, params.hosts_per_subnet, params.stub_link, params.proxy_mode);
  }
  SDM_CHECK(net.topo.is_connected());
  return net;
}

}  // namespace sdmbox::net
