#include "net/routing.hpp"

#include <algorithm>

namespace sdmbox::net {

RoutingTables RoutingTables::compute(const Topology& topo,
                                     const std::vector<bool>* down_links) {
  RoutingTables rt;
  const std::size_t n = topo.node_count();
  rt.next_.assign(n, std::vector<NextHop>(n));
  rt.dist_.assign(n, std::vector<double>(n, ShortestPathTree::kInfinity));

  for (std::uint32_t src = 0; src < n; ++src) {
    const ShortestPathTree tree = dijkstra(topo, NodeId{src}, down_links);
    for (std::uint32_t dst = 0; dst < n; ++dst) {
      rt.dist_[src][dst] = tree.distance[dst];
      if (dst == src || !tree.reachable(NodeId{dst})) continue;
      // Walk predecessors from dst back to src to find the first hop.
      NodeId hop{dst};
      while (tree.predecessor[hop.v] != NodeId{src}) {
        hop = tree.predecessor[hop.v];
        SDM_CHECK_MSG(hop.valid(), "broken predecessor chain");
      }
      rt.next_[src][dst] = NextHop{hop, topo.find_link(NodeId{src}, hop)};
    }
  }
  return rt;
}

std::vector<NodeId> RoutingTables::path(NodeId from, NodeId to) const {
  std::vector<NodeId> out;
  if (from.v >= next_.size() || to.v >= next_.size()) return out;
  if (distance(from, to) == ShortestPathTree::kInfinity) return out;
  out.push_back(from);
  NodeId cur = from;
  while (cur != to) {
    const NextHop hop = next_hop(cur, to);
    if (!hop.valid()) return {};
    cur = hop.node;
    out.push_back(cur);
    SDM_CHECK_MSG(out.size() <= next_.size(), "forwarding loop detected");
  }
  return out;
}

AddressResolver AddressResolver::build(const Topology& topo) {
  AddressResolver r;
  for (std::uint32_t i = 0; i < topo.node_count(); ++i) {
    const Node& node = topo.node(NodeId{i});
    r.exact_.emplace(node.address.value(), NodeId{i});
  }
  // Stub subnets terminate at the node the topology declared (the in-path
  // proxy for in-path deployments, the edge router for off-path ones).
  for (std::uint32_t i = 0; i < topo.node_count(); ++i) {
    const Node& node = topo.node(NodeId{i});
    if (node.kind != NodeKind::kEdgeRouter || !node.has_subnet) continue;
    r.subnets_.push_back(SubnetEntry{node.subnet, node.subnet_terminal, NodeId{i}});
  }
  std::sort(r.subnets_.begin(), r.subnets_.end(), [](const SubnetEntry& a, const SubnetEntry& b) {
    if (a.prefix.length() != b.prefix.length()) return a.prefix.length() > b.prefix.length();
    return a.prefix.base() < b.prefix.base();
  });
  return r;
}

std::optional<NodeId> AddressResolver::resolve(IpAddress a) const {
  if (const auto it = exact_.find(a.value()); it != exact_.end()) return it->second;
  for (const auto& entry : subnets_) {
    if (entry.prefix.contains(a)) return entry.terminal;
  }
  return std::nullopt;
}

std::optional<NodeId> AddressResolver::owning_edge_router(IpAddress a) const {
  for (const auto& entry : subnets_) {
    if (entry.prefix.contains(a)) return entry.edge_router;
  }
  return std::nullopt;
}

}  // namespace sdmbox::net
