// IPv4 addresses and prefixes.
//
// The enforcement plane matches traffic descriptors whose source/destination
// fields are prefixes (possibly the full wildcard 0.0.0.0/0), and the
// substrate resolves destination addresses to attachment routers by
// longest-prefix match, so Prefix is the workhorse type here.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

namespace sdmbox::net {

/// An IPv4 address as a host-order 32-bit value.
class IpAddress {
public:
  constexpr IpAddress() noexcept : value_(0) {}
  constexpr explicit IpAddress(std::uint32_t value) noexcept : value_(value) {}
  constexpr IpAddress(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) |
               std::uint32_t{d}) {}

  constexpr std::uint32_t value() const noexcept { return value_; }
  constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// Parse dotted-quad notation; nullopt on malformed input.
  static std::optional<IpAddress> parse(const std::string& text);

  std::string to_string() const;

  friend constexpr auto operator<=>(IpAddress, IpAddress) noexcept = default;

private:
  std::uint32_t value_;
};

/// A CIDR prefix, e.g. 10.1.0.0/20. length == 0 is the full wildcard.
class Prefix {
public:
  constexpr Prefix() noexcept : base_(), length_(0) {}  // wildcard
  /// Host bits of `base` below `length` are masked off.
  constexpr Prefix(IpAddress base, std::uint8_t length) noexcept
      : base_(IpAddress(length == 0 ? 0 : (base.value() & mask_for(length)))), length_(length) {}

  static constexpr Prefix wildcard() noexcept { return Prefix(); }
  /// A /32 prefix matching exactly one address.
  static constexpr Prefix host(IpAddress a) noexcept { return Prefix(a, 32); }

  /// Parse "a.b.c.d/len" (or bare "a.b.c.d" as /32); nullopt on malformed input.
  static std::optional<Prefix> parse(const std::string& text);

  constexpr IpAddress base() const noexcept { return base_; }
  constexpr std::uint8_t length() const noexcept { return length_; }
  constexpr bool is_wildcard() const noexcept { return length_ == 0; }

  constexpr bool contains(IpAddress a) const noexcept {
    if (length_ == 0) return true;
    return (a.value() & mask_for(length_)) == base_.value();
  }

  constexpr bool contains(const Prefix& other) const noexcept {
    return other.length_ >= length_ && contains(other.base_);
  }

  /// Two prefixes overlap iff one contains the other.
  constexpr bool overlaps(const Prefix& other) const noexcept {
    return contains(other) || other.contains(*this);
  }

  /// First address in the prefix (the base).
  constexpr IpAddress first() const noexcept { return base_; }
  /// Last address in the prefix.
  constexpr IpAddress last() const noexcept {
    return IpAddress(base_.value() | ~mask_for(length_));
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) noexcept = default;

private:
  static constexpr std::uint32_t mask_for(std::uint8_t length) noexcept {
    return length == 0 ? 0u : (~std::uint32_t{0} << (32 - length));
  }

  IpAddress base_;
  std::uint8_t length_;
};

}  // namespace sdmbox::net
