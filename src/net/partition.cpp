#include "net/partition.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace sdmbox::net {

namespace {

/// BFS visit order from node 0, restarting at the lowest-id unvisited node
/// so disconnected components (and isolated hosts) still land somewhere
/// deterministic.
std::vector<std::uint32_t> bfs_order(const Topology& topo) {
  const std::size_t n = topo.node_count();
  std::vector<std::uint32_t> order;
  order.reserve(n);
  std::vector<bool> seen(n, false);
  std::vector<std::uint32_t> queue;
  for (std::size_t start = 0; start < n; ++start) {
    if (seen[start]) continue;
    seen[start] = true;
    queue.clear();
    queue.push_back(static_cast<std::uint32_t>(start));
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::uint32_t u = queue[head];
      order.push_back(u);
      for (const Adjacency& adj : topo.neighbors(NodeId{u})) {
        if (seen[adj.neighbor.v]) continue;
        seen[adj.neighbor.v] = true;
        queue.push_back(static_cast<std::uint32_t>(adj.neighbor.v));
      }
    }
  }
  return order;
}

void fill_cross_links(const Topology& topo, Partition& p) {
  p.cross_links.clear();
  p.min_cross_delay_s = std::numeric_limits<double>::infinity();
  for (std::size_t l = 0; l < topo.link_count(); ++l) {
    const Link& link = topo.link(LinkId{l});
    if (p.node_region[link.a.v] == p.node_region[link.b.v]) continue;
    p.cross_links.push_back(LinkId{l});
    p.min_cross_delay_s = std::min(p.min_cross_delay_s, link.params.delay_us * 1e-6);
  }
}

}  // namespace

Partition partition_regions(const Topology& topo, std::size_t regions) {
  SDM_CHECK_MSG(regions >= 1, "at least one region required");
  const std::size_t n = topo.node_count();
  SDM_CHECK_MSG(n > 0, "cannot partition an empty topology");
  regions = std::min(regions, n);

  Partition p;
  p.region_count = regions;
  p.node_region.assign(n, 0);
  p.region_sizes.assign(regions, 0);

  // Contiguous chunks of the BFS order: region r gets order[r*chunk ..),
  // sized so the first (n % regions) regions absorb the remainder.
  const std::vector<std::uint32_t> order = bfs_order(topo);
  const std::size_t base = n / regions;
  const std::size_t extra = n % regions;
  std::size_t pos = 0;
  for (std::size_t r = 0; r < regions; ++r) {
    const std::size_t take = base + (r < extra ? 1 : 0);
    for (std::size_t i = 0; i < take; ++i) p.node_region[order[pos++]] = static_cast<std::uint32_t>(r);
    p.region_sizes[r] = take;
  }
  SDM_CHECK(pos == n);

  if (regions > 1) {
    // One greedy refinement sweep: move a boundary node to the region most
    // of its neighbors live in when that strictly reduces the cut, the
    // source keeps at least one node, and the destination stays within the
    // imbalance budget. Node-id order + lowest-region tie-break keeps the
    // result a pure function of (topology, regions).
    const std::size_t cap = base + (extra != 0 ? 1 : 0) + std::max<std::size_t>(1, n / (10 * regions));
    std::vector<std::size_t> degree(regions, 0);
    for (std::size_t u = 0; u < n; ++u) {
      const std::uint32_t home = p.node_region[u];
      if (p.region_sizes[home] <= 1) continue;
      std::fill(degree.begin(), degree.end(), 0);
      bool boundary = false;
      for (const Adjacency& adj : topo.neighbors(NodeId{u})) {
        const std::uint32_t r = p.node_region[adj.neighbor.v];
        ++degree[r];
        boundary = boundary || r != home;
      }
      if (!boundary) continue;
      std::uint32_t best = home;
      for (std::uint32_t r = 0; r < regions; ++r) {
        if (r != home && degree[r] > degree[best]) best = r;
      }
      if (best == home || degree[best] <= degree[home]) continue;
      if (p.region_sizes[best] + 1 > cap) continue;
      p.node_region[u] = best;
      --p.region_sizes[home];
      ++p.region_sizes[best];
    }
  }

  fill_cross_links(topo, p);
  return p;
}

}  // namespace sdmbox::net
