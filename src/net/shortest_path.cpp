#include "net/shortest_path.hpp"

#include <algorithm>
#include <queue>

namespace sdmbox::net {

std::vector<NodeId> ShortestPathTree::path_to(NodeId dest) const {
  if (!reachable(dest)) return {};
  std::vector<NodeId> rev;
  for (NodeId n = dest; n.valid(); n = predecessor[n.v]) {
    rev.push_back(n);
    if (n == source) break;
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

ShortestPathTree dijkstra(const Topology& topo, NodeId source,
                          const std::vector<bool>* down_links) {
  const std::size_t n = topo.node_count();
  SDM_CHECK(source.v < n);
  ShortestPathTree tree;
  tree.source = source;
  tree.distance.assign(n, ShortestPathTree::kInfinity);
  tree.predecessor.assign(n, NodeId{});
  tree.via_link.assign(n, LinkId{});
  tree.distance[source.v] = 0.0;

  // (distance, node) min-heap; stale entries skipped on pop. Tie-break on
  // node id keeps extraction order deterministic for equal distances.
  using Entry = std::pair<double, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, source.v);
  std::vector<bool> done(n, false);

  while (!heap.empty()) {
    const auto [dist, uv] = heap.top();
    heap.pop();
    if (done[uv]) continue;
    done[uv] = true;
    const NodeId u{uv};
    // Leaf devices (hosts, middleboxes) do not forward transit traffic:
    // expand their neighbors only when the leaf is the source itself.
    if (!is_forwarding(topo.node(u).kind) && u != source) continue;
    for (const auto& adj : topo.neighbors(u)) {
      if (down_links != nullptr && (*down_links)[adj.link.v]) continue;
      const double alt = dist + topo.link(adj.link).params.cost;
      auto& cur = tree.distance[adj.neighbor.v];
      // Strictly-better relaxation, or equal-cost with smaller predecessor id
      // (deterministic equal-cost tie-break).
      if (alt < cur || (alt == cur && u < tree.predecessor[adj.neighbor.v])) {
        cur = alt;
        tree.predecessor[adj.neighbor.v] = u;
        tree.via_link[adj.neighbor.v] = adj.link;
        heap.emplace(alt, adj.neighbor.v);
      }
    }
  }
  return tree;
}

std::vector<ShortestPathTree> all_pairs_shortest_paths(const Topology& topo) {
  std::vector<ShortestPathTree> out;
  out.reserve(topo.node_count());
  for (std::uint32_t i = 0; i < topo.node_count(); ++i) {
    out.push_back(dijkstra(topo, NodeId{i}));
  }
  return out;
}

std::vector<NodeId> k_closest(const ShortestPathTree& tree, const std::vector<NodeId>& candidates,
                              std::size_t k) {
  std::vector<NodeId> sorted;
  for (NodeId c : candidates) {
    if (tree.reachable(c)) sorted.push_back(c);
  }
  std::sort(sorted.begin(), sorted.end(), [&](NodeId a, NodeId b) {
    if (tree.distance[a.v] != tree.distance[b.v]) return tree.distance[a.v] < tree.distance[b.v];
    return a < b;
  });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

}  // namespace sdmbox::net
