// Region partitioning for the parallel simulation engine (psim).
//
// The conservative windowed engine needs the topology cut into contiguous
// regions: each region gets its own event calendar and worker thread, and
// the execution window is bounded by the minimum propagation delay across
// any inter-region link (the classic conservative lookahead). The
// partitioner here is deliberately METIS-lite: a BFS ordering pass gives
// contiguous chunks, and one deterministic greedy refinement sweep trims the
// cut. Quality matters much less than determinism — the partition is part of
// the reproducibility contract (same topology + same region count => same
// partition => byte-identical runs).
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"

namespace sdmbox::net {

/// A region assignment over a topology. node_region maps every node to a
/// region in [0, region_count); cross_links lists every link whose endpoints
/// land in different regions; min_cross_delay_s is the conservative
/// lookahead (infinity when there are no cross links, e.g. region_count 1).
struct Partition {
  std::size_t region_count = 1;
  std::vector<std::uint32_t> node_region;
  std::vector<LinkId> cross_links;
  double min_cross_delay_s = 0;
  std::vector<std::size_t> region_sizes;

  std::size_t cut_size() const noexcept { return cross_links.size(); }
};

/// Partition `topo` into `regions` contiguous regions (clamped to the node
/// count). BFS from the lowest node id (restarting at the lowest unvisited
/// node for disconnected components) yields an ordering in which graph
/// neighbors sit close together; slicing that order into near-equal chunks
/// gives contiguous regions. A single greedy sweep then moves boundary nodes
/// to their majority-neighbor region when that strictly shrinks the cut and
/// keeps region sizes within a small imbalance budget. Fully deterministic:
/// no RNG, ties broken by lowest id.
Partition partition_regions(const Topology& topo, std::size_t regions);

}  // namespace sdmbox::net
