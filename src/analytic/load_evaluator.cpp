#include "analytic/load_evaluator.hpp"

#include <limits>

#include "core/strategy.hpp"

namespace sdmbox::analytic {

LoadReport evaluate_loads(const net::GeneratedNetwork& network,
                          const core::Deployment& deployment,
                          const policy::PolicyList& policies, const core::EnforcementPlan& plan,
                          std::span<const workload::FlowRecord> flows,
                          const EvalOptions& options) {
  (void)deployment;
  LoadReport report;
  for (const workload::FlowRecord& f : flows) {
    const policy::Policy* pol = policies.first_match(f.id);
    if (pol == nullptr || pol->is_permit()) {
      report.unmatched_packets += f.packets;
      continue;
    }
    if (pol->deny) {
      report.denied_packets += f.packets;
      continue;
    }
    report.matched_packets += f.packets;
    SDM_CHECK(f.src_subnet >= 0 &&
              static_cast<std::size_t>(f.src_subnet) < network.proxies.size());
    net::NodeId at = network.proxies[static_cast<std::size_t>(f.src_subnet)];
    for (const policy::FunctionId e : pol->actions) {
      const net::NodeId y =
          core::select_next_hop(plan, at, *pol, e, f.id, f.src_subnet, f.dst_subnet);
      SDM_CHECK_MSG(y.valid(), "flow chain hit a function with no candidates");
      report.load[y.v] += f.packets;
      report.load_by_function[(std::uint64_t{y.v} << 8) | e.v] += f.packets;
      if (y == at) {
        report.local_continuations += f.packets;
      } else {
        report.forwarded_transitions += f.packets;
      }
      at = y;
      // §III.F: a caching WP answers the source; the chain truncates here.
      if (e == policy::kWebProxy && core::wp_cache_hit(f.id, options.wp_cache_hit_rate)) break;
    }
  }
  return report;
}

PathStretchReport evaluate_path_stretch(const net::GeneratedNetwork& network,
                                        const policy::PolicyList& policies,
                                        const core::EnforcementPlan& plan,
                                        const net::RoutingTables& routing,
                                        std::span<const workload::FlowRecord> flows) {
  PathStretchReport out;
  double direct_sum = 0, enforced_sum = 0;
  for (const workload::FlowRecord& f : flows) {
    const policy::Policy* pol = policies.first_match(f.id);
    if (pol == nullptr || pol->is_permit() || pol->deny) continue;
    const net::NodeId src = network.proxies[static_cast<std::size_t>(f.src_subnet)];
    const net::NodeId dst = network.proxies[static_cast<std::size_t>(f.dst_subnet)];
    const auto w = static_cast<double>(f.packets);
    direct_sum += w * routing.distance(src, dst);
    net::NodeId at = src;
    double hops = 0;
    for (const policy::FunctionId e : pol->actions) {
      const net::NodeId y =
          core::select_next_hop(plan, at, *pol, e, f.id, f.src_subnet, f.dst_subnet);
      SDM_CHECK_MSG(y.valid(), "flow chain hit a function with no candidates");
      if (y != at) hops += routing.distance(at, y);
      at = y;
    }
    hops += routing.distance(at, dst);
    enforced_sum += w * hops;
    out.matched_packets += f.packets;
  }
  if (out.matched_packets > 0) {
    out.direct_hops = direct_sum / static_cast<double>(out.matched_packets);
    out.enforced_hops = enforced_sum / static_cast<double>(out.matched_packets);
  }
  return out;
}

std::vector<TypeLoadSummary> summarize_by_function(const LoadReport& report,
                                                   const core::Deployment& deployment,
                                                   const policy::FunctionCatalog& catalog) {
  std::vector<TypeLoadSummary> out;
  for (const policy::FunctionId e : catalog.all()) {
    const auto& impls = deployment.implementers(e);
    if (impls.empty()) continue;
    TypeLoadSummary s;
    s.function = e;
    s.function_name = catalog.name(e);
    s.min_load = std::numeric_limits<std::uint64_t>::max();
    for (const net::NodeId m : impls) {
      const std::uint64_t load = report.load_of(m, e);
      const core::MiddleboxInfo* info = deployment.find(m);
      const std::string name = info != nullptr ? info->name : "?";
      s.total_load += load;
      if (s.max_name.empty() || load > s.max_load) {
        s.max_load = load;
        s.max_name = name;
      }
      if (load < s.min_load) {
        s.min_load = load;
        s.min_name = name;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace sdmbox::analytic
