// Flow-level load evaluation.
//
// Because every strategy's next-hop choice is a pure function of the flow
// 5-tuple (see core/strategy.hpp), all packets of a flow traverse the same
// middlebox chain; per-middlebox packet loads therefore equal the sum of
// flow sizes over flows routed through the box. This evaluator walks each
// flow's chain once — no event simulation — and produces exactly the loads
// the packet simulator would count. An integration test asserts that
// equivalence; the figure benches rely on it to reach the paper's 10M-packet
// operating points in milliseconds.
#pragma once

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/agents.hpp"
#include "core/controller.hpp"
#include "workload/flow_gen.hpp"

namespace sdmbox::analytic {

struct LoadReport {
  /// Packets processed per middlebox node (NodeId.v -> packets), counting
  /// one unit per function application (a consolidated box applying two
  /// chain functions counts each packet twice).
  std::unordered_map<std::uint32_t, std::uint64_t> load;
  /// Same, split per function: key = (NodeId.v << 8) | FunctionId.v.
  std::unordered_map<std::uint64_t, std::uint64_t> load_by_function;
  std::uint64_t matched_packets = 0;    // packets of chain-enforced flows
  std::uint64_t unmatched_packets = 0;  // permit / background packets
  std::uint64_t denied_packets = 0;     // dropped at the proxy by deny rules
  /// Packet-weighted chain transitions that crossed the network (sender !=
  /// receiver) vs. continued locally on a consolidated middlebox.
  std::uint64_t forwarded_transitions = 0;
  std::uint64_t local_continuations = 0;

  std::uint64_t load_of(net::NodeId n) const {
    const auto it = load.find(n.v);
    return it == load.end() ? 0 : it->second;
  }
  std::uint64_t load_of(net::NodeId n, policy::FunctionId e) const {
    const auto it = load_by_function.find((std::uint64_t{n.v} << 8) | e.v);
    return it == load_by_function.end() ? 0 : it->second;
  }
};

/// Min/max/total load over the middleboxes of one function type — the unit
/// of the paper's Figures 4-5 and Table III.
struct TypeLoadSummary {
  policy::FunctionId function;
  std::string function_name;
  std::uint64_t max_load = 0;
  std::uint64_t min_load = 0;
  std::uint64_t total_load = 0;
  std::string max_name;  // middlebox with the max load
  std::string min_name;
};

struct EvalOptions {
  /// §III.F web-proxy caching: flows hit in cache stop their chain at the
  /// WP (must match the AgentOptions value used in a paired DES run).
  double wp_cache_hit_rate = 0.0;
};

/// Walk every flow's enforcement chain under `plan` and tally loads.
LoadReport evaluate_loads(const net::GeneratedNetwork& network,
                          const core::Deployment& deployment,
                          const policy::PolicyList& policies, const core::EnforcementPlan& plan,
                          std::span<const workload::FlowRecord> flows,
                          const EvalOptions& options = {});

/// Per-function-type min/max/total over the deployment.
std::vector<TypeLoadSummary> summarize_by_function(const LoadReport& report,
                                                   const core::Deployment& deployment,
                                                   const policy::FunctionCatalog& catalog);

/// Path-length cost of enforcement: packet-weighted router hops from the
/// source proxy to the destination subnet, directly (what plain routing
/// would do) vs. through the policy's middlebox chain under `plan`.
/// Stretch = enforced / direct. Hot-potato minimizes it by construction;
/// load balancing trades hops for balance — the tension §III.C navigates.
struct PathStretchReport {
  double direct_hops = 0;    // packet-weighted mean, matched flows only
  double enforced_hops = 0;
  std::uint64_t matched_packets = 0;

  double stretch() const noexcept { return direct_hops > 0 ? enforced_hops / direct_hops : 1.0; }
};

PathStretchReport evaluate_path_stretch(const net::GeneratedNetwork& network,
                                        const policy::PolicyList& policies,
                                        const core::EnforcementPlan& plan,
                                        const net::RoutingTables& routing,
                                        std::span<const workload::FlowRecord> flows);

}  // namespace sdmbox::analytic
