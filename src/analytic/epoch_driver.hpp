// Measurement-epoch study (§III.C: "Periodically, all policy proxies send
// their measured traffic volumes to the controller").
//
// The controller never sees the future: in epoch i it balances with split
// ratios computed from epoch i-1's proxy reports. This driver replays a
// sequence of (possibly drifting) workloads under three regimes and records
// the realized max load per epoch:
//   * oracle      — LP solved on the epoch's own traffic (upper bound on
//                    what re-optimization can achieve),
//   * reoptimized — LP solved on the previous epoch's measurement (the
//                    paper's actual operating mode),
//   * stale       — LP solved once on epoch 0 and never refreshed.
// The gap stale-vs-reoptimized quantifies why periodic measurement matters.
#pragma once

#include <vector>

#include "analytic/load_evaluator.hpp"
#include "core/controller.hpp"
#include "workload/traffic_matrix.hpp"

namespace sdmbox::analytic {

struct EpochOutcome {
  std::uint64_t max_load = 0;     // realized max over all middleboxes
  std::uint64_t total_packets = 0;
  double lambda = 0;              // the LP's own prediction for its input traffic
};

struct EpochStudy {
  std::vector<EpochOutcome> oracle;
  std::vector<EpochOutcome> reoptimized;
  std::vector<EpochOutcome> stale;
};

/// Run the study over `epochs` workloads (all against the same network,
/// deployment and policies). Epoch 0 of `reoptimized` uses its own
/// measurement (there is no prior epoch), like `oracle`.
EpochStudy run_epoch_study(const net::GeneratedNetwork& network, core::Deployment& deployment,
                           const policy::PolicyList& policies, core::Controller& controller,
                           const std::vector<workload::GeneratedFlows>& epochs);

}  // namespace sdmbox::analytic
