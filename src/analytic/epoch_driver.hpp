// Measurement-epoch study (§III.C: "Periodically, all policy proxies send
// their measured traffic volumes to the controller").
//
// The controller never sees the future: in epoch i it balances with split
// ratios computed from epoch i-1's proxy reports. This driver replays a
// sequence of (possibly drifting) workloads under three regimes and records
// the realized max load per epoch:
//   * oracle      — LP solved on the epoch's own traffic (upper bound on
//                    what re-optimization can achieve),
//   * reoptimized — LP solved on the previous epoch's measurement (the
//                    paper's actual operating mode),
//   * stale       — LP solved once on epoch 0 and never refreshed.
// The gap stale-vs-reoptimized quantifies why periodic measurement matters.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "analytic/load_evaluator.hpp"
#include "core/controller.hpp"
#include "workload/traffic_matrix.hpp"

namespace sdmbox::analytic {

struct EpochOutcome {
  std::uint64_t max_load = 0;     // realized max over all middleboxes
  std::uint64_t total_packets = 0;
  double lambda = 0;              // the LP's own prediction for its input traffic
};

struct EpochStudy {
  std::vector<EpochOutcome> oracle;
  std::vector<EpochOutcome> reoptimized;
  std::vector<EpochOutcome> stale;
};

/// Run the study over `epochs` workloads (all against the same network,
/// deployment and policies). Epoch 0 of `reoptimized` uses its own
/// measurement (there is no prior epoch), like `oracle`.
EpochStudy run_epoch_study(const net::GeneratedNetwork& network, core::Deployment& deployment,
                           const policy::PolicyList& policies, core::Controller& controller,
                           const std::vector<workload::GeneratedFlows>& epochs);

/// One epoch of a policy-driven (closed-loop) replay.
struct PolicyEpoch {
  EpochOutcome outcome;
  bool solved = false;           // the plan serving this epoch came from a fresh solve
  std::size_t pushes = 0;        // devices whose serialized slice changed on that solve
  std::uint64_t push_bytes = 0;  // bytes of those changed slices (plan churn)
  std::size_t lp_pivots = 0;     // simplex pivots of that solve
  bool lp_warm_started = false;  // that solve re-used the previous basis
  /// Per-middlebox realized loads (deployment order) — what a drift
  /// detector watches.
  std::vector<double> loads;
};

struct PolicyStudy {
  std::vector<PolicyEpoch> epochs;
  std::size_t solves = 0;  // LP solves across the run (>= 1: the bootstrap)
  std::size_t pushes = 0;
  std::uint64_t push_bytes = 0;
  std::uint64_t lp_pivots = 0;
  std::size_t lp_warm_starts = 0;  // solves that re-used the previous basis
};

/// Decides, AFTER epoch `epoch` realized `loads` under the current plan and
/// measured `measured`, whether the next epoch should run on a plan freshly
/// solved from that measurement (true) or keep the current plan (false).
/// This is where control::DriftDetector plugs in.
using ReplanDecision = std::function<bool(
    std::size_t epoch, const std::vector<double>& loads, const workload::TrafficMatrix& measured)>;

/// Replay `epochs` under a caller-provided replan policy — the analytic twin
/// of the online control::ReoptimizePolicy loop. Epoch 0 always solves on
/// its own measurement (bootstrap, like run_epoch_study's reoptimized arm);
/// from then on `should_replan` gates every re-solve. Pushes are counted by
/// fingerprint comparison of per-device serialized slices — the same
/// differential-distribution rule ControllerAgent::replan applies, so the
/// bench's push counts are directly comparable to the online loop's.
/// Capacity is normalized exactly as in run_epoch_study so λ values and
/// realized loads compare across arms.
PolicyStudy run_policy_study(const net::GeneratedNetwork& network, core::Deployment& deployment,
                             const policy::PolicyList& policies, core::Controller& controller,
                             const std::vector<workload::GeneratedFlows>& epochs,
                             const ReplanDecision& should_replan);

}  // namespace sdmbox::analytic
