#include "analytic/epoch_driver.hpp"

#include <algorithm>
#include <unordered_map>

#include "control/codec.hpp"

namespace sdmbox::analytic {

namespace {

std::uint64_t realized_max_load(const net::GeneratedNetwork& network,
                                const core::Deployment& deployment,
                                const policy::PolicyList& policies,
                                const core::EnforcementPlan& plan,
                                const workload::GeneratedFlows& flows) {
  const LoadReport report =
      evaluate_loads(network, deployment, policies, plan, flows.flows);
  std::uint64_t max_load = 0;
  for (const auto& m : deployment.middleboxes()) {
    max_load = std::max(max_load, report.load_of(m.node));
  }
  return max_load;
}

}  // namespace

EpochStudy run_epoch_study(const net::GeneratedNetwork& network, core::Deployment& deployment,
                           const policy::PolicyList& policies, core::Controller& controller,
                           const std::vector<workload::GeneratedFlows>& epochs) {
  SDM_CHECK_MSG(!epochs.empty(), "epoch study needs at least one epoch");
  EpochStudy study;

  // Measurements per epoch, as the proxies would report them.
  std::vector<workload::TrafficMatrix> measured;
  measured.reserve(epochs.size());
  double peak_traffic = 1.0;
  for (const auto& flows : epochs) {
    measured.push_back(workload::TrafficMatrix::measure(policies, flows.flows));
    peak_traffic = std::max(peak_traffic, measured.back().grand_total());
  }
  // One capacity normalization across the whole study so λ values compare.
  deployment.set_uniform_capacity(peak_traffic);

  const core::EnforcementPlan stale_plan =
      controller.compile(core::StrategyKind::kLoadBalanced, &measured.front());

  for (std::size_t i = 0; i < epochs.size(); ++i) {
    const workload::TrafficMatrix& own = measured[i];
    const workload::TrafficMatrix& prev = measured[i == 0 ? 0 : i - 1];

    const core::EnforcementPlan oracle_plan =
        controller.compile(core::StrategyKind::kLoadBalanced, &own);
    const core::EnforcementPlan reopt_plan =
        controller.compile(core::StrategyKind::kLoadBalanced, &prev);

    const auto outcome = [&](const core::EnforcementPlan& plan) {
      EpochOutcome o;
      o.max_load = realized_max_load(network, deployment, policies, plan, epochs[i]);
      o.total_packets = epochs[i].total_packets;
      o.lambda = plan.lambda;
      return o;
    };
    study.oracle.push_back(outcome(oracle_plan));
    study.reoptimized.push_back(outcome(reopt_plan));
    study.stale.push_back(outcome(stale_plan));
  }
  return study;
}

PolicyStudy run_policy_study(const net::GeneratedNetwork& network, core::Deployment& deployment,
                             const policy::PolicyList& policies, core::Controller& controller,
                             const std::vector<workload::GeneratedFlows>& epochs,
                             const ReplanDecision& should_replan) {
  SDM_CHECK_MSG(!epochs.empty(), "policy study needs at least one epoch");
  SDM_CHECK_MSG(should_replan != nullptr, "policy study needs a replan decision");
  PolicyStudy study;

  std::vector<workload::TrafficMatrix> measured;
  measured.reserve(epochs.size());
  double peak_traffic = 1.0;
  for (const auto& flows : epochs) {
    measured.push_back(workload::TrafficMatrix::measure(policies, flows.flows));
    peak_traffic = std::max(peak_traffic, measured.back().grand_total());
  }
  // Same normalization as run_epoch_study so arms compare.
  deployment.set_uniform_capacity(peak_traffic);

  // Differential-push baseline, mirroring ControllerAgent::replan: a device
  // is "pushed" when its version-zeroed serialized slice changed.
  std::unordered_map<std::uint32_t, std::vector<std::uint8_t>> last_pushed;
  core::EnforcementPlan plan;

  const auto solve_and_push = [&](const workload::TrafficMatrix& traffic, PolicyEpoch& e) {
    core::Controller::SolveInfo info;
    plan = controller.compile(core::StrategyKind::kLoadBalanced, &traffic, &info);
    e.solved = true;
    e.lp_pivots = info.pivots;
    e.lp_warm_started = info.warm_started;
    ++study.solves;
    study.lp_pivots += info.pivots;
    if (info.warm_started) ++study.lp_warm_starts;
    for (const auto& [node_v, cfg] : plan.configs) {
      const core::DeviceConfig slice = core::slice_for_device(plan, net::NodeId{node_v}, 0);
      std::vector<std::uint8_t> fingerprint = control::encode_device_config(slice);
      const auto it = last_pushed.find(node_v);
      if (it != last_pushed.end() && it->second == fingerprint) continue;
      ++e.pushes;
      e.push_bytes += fingerprint.size();
      last_pushed[node_v] = std::move(fingerprint);
    }
    study.pushes += e.pushes;
    study.push_bytes += e.push_bytes;
  };

  bool solve_next = false;
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    PolicyEpoch e;
    // The controller never sees the future: a re-solve for epoch i uses
    // epoch i-1's measurement (epoch 0 bootstraps on its own, like
    // run_epoch_study's reoptimized arm).
    if (i == 0) {
      solve_and_push(measured.front(), e);
    } else if (solve_next) {
      solve_and_push(measured[i - 1], e);
    }

    const LoadReport report = evaluate_loads(network, deployment, policies, plan, epochs[i].flows);
    const auto& middleboxes = deployment.middleboxes();
    e.loads.reserve(middleboxes.size());
    std::uint64_t max_load = 0;
    for (const auto& m : middleboxes) {
      const std::uint64_t load = report.load_of(m.node);
      e.loads.push_back(static_cast<double>(load));
      max_load = std::max(max_load, load);
    }
    e.outcome.max_load = max_load;
    e.outcome.total_packets = epochs[i].total_packets;
    e.outcome.lambda = plan.lambda;

    solve_next = should_replan(i, e.loads, measured[i]);
    study.epochs.push_back(std::move(e));
  }
  return study;
}

}  // namespace sdmbox::analytic
