#include "analytic/epoch_driver.hpp"

#include <algorithm>

namespace sdmbox::analytic {

namespace {

std::uint64_t realized_max_load(const net::GeneratedNetwork& network,
                                const core::Deployment& deployment,
                                const policy::PolicyList& policies,
                                const core::EnforcementPlan& plan,
                                const workload::GeneratedFlows& flows) {
  const LoadReport report =
      evaluate_loads(network, deployment, policies, plan, flows.flows);
  std::uint64_t max_load = 0;
  for (const auto& m : deployment.middleboxes()) {
    max_load = std::max(max_load, report.load_of(m.node));
  }
  return max_load;
}

}  // namespace

EpochStudy run_epoch_study(const net::GeneratedNetwork& network, core::Deployment& deployment,
                           const policy::PolicyList& policies, core::Controller& controller,
                           const std::vector<workload::GeneratedFlows>& epochs) {
  SDM_CHECK_MSG(!epochs.empty(), "epoch study needs at least one epoch");
  EpochStudy study;

  // Measurements per epoch, as the proxies would report them.
  std::vector<workload::TrafficMatrix> measured;
  measured.reserve(epochs.size());
  double peak_traffic = 1.0;
  for (const auto& flows : epochs) {
    measured.push_back(workload::TrafficMatrix::measure(policies, flows.flows));
    peak_traffic = std::max(peak_traffic, measured.back().grand_total());
  }
  // One capacity normalization across the whole study so λ values compare.
  deployment.set_uniform_capacity(peak_traffic);

  const core::EnforcementPlan stale_plan =
      controller.compile(core::StrategyKind::kLoadBalanced, &measured.front());

  for (std::size_t i = 0; i < epochs.size(); ++i) {
    const workload::TrafficMatrix& own = measured[i];
    const workload::TrafficMatrix& prev = measured[i == 0 ? 0 : i - 1];

    const core::EnforcementPlan oracle_plan =
        controller.compile(core::StrategyKind::kLoadBalanced, &own);
    const core::EnforcementPlan reopt_plan =
        controller.compile(core::StrategyKind::kLoadBalanced, &prev);

    const auto outcome = [&](const core::EnforcementPlan& plan) {
      EpochOutcome o;
      o.max_load = realized_max_load(network, deployment, policies, plan, epochs[i]);
      o.total_packets = epochs[i].total_packets;
      o.lambda = plan.lambda;
      return o;
    };
    study.oracle.push_back(outcome(oracle_plan));
    study.reoptimized.push_back(outcome(reopt_plan));
    study.stale.push_back(outcome(stale_plan));
  }
  return study;
}

}  // namespace sdmbox::analytic
