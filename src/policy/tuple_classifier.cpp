// Tuple-space-search classifier (Srinivasan & Varghese): rules are grouped
// by their (source prefix length, destination prefix length) tuple; within a
// tuple an exact-match hash table keys on the masked address pair, and the
// small per-bucket lists (sorted by priority) are checked linearly for the
// port/protocol fields. A lookup probes one hash table per distinct tuple —
// O(#tuples) probes instead of O(#rules) scans, with #tuples small in
// practice because operators use few distinct prefix lengths.
#include <unordered_map>

#include "policy/classifier.hpp"
#include "util/hash.hpp"

namespace sdmbox::policy {

namespace {

class TupleSpaceClassifier final : public Classifier {
public:
  explicit TupleSpaceClassifier(std::vector<const Policy*> view) {
    for (const Policy* p : view) {
      tuples_[tuple_of(p->descriptor)]
          .rules[mask_key(p->descriptor.src.base().value(), p->descriptor.dst.base().value())]
          .push_back(p);
    }
  }

  const Policy* first_match(const packet::FlowId& f) const override {
    const Policy* best = nullptr;
    for (const auto& [tuple, table] : tuples_) {
      const std::uint8_t src_len = static_cast<std::uint8_t>(tuple >> 8);
      const std::uint8_t dst_len = static_cast<std::uint8_t>(tuple & 0xff);
      const std::uint64_t key =
          mask_key(f.src.value() & mask(src_len), f.dst.value() & mask(dst_len));
      const auto bucket = table.rules.find(key);
      if (bucket == table.rules.end()) continue;
      for (const Policy* p : bucket->second) {
        if (best != nullptr && best->id < p->id) break;  // sorted by id
        const TrafficDescriptor& td = p->descriptor;
        if (td.src_port.contains(f.src_port) && td.dst_port.contains(f.dst_port) &&
            (!td.protocol || *td.protocol == f.protocol)) {
          best = p;
          break;
        }
      }
    }
    return best;
  }

  std::size_t memory_bytes() const override {
    std::size_t bytes = tuples_.size() * sizeof(Table);
    for (const auto& [tuple, table] : tuples_) {
      for (const auto& [key, rules] : table.rules) {
        bytes += sizeof(key) + rules.size() * sizeof(const Policy*);
      }
    }
    return bytes;
  }

  const char* name() const override { return "tuple-space"; }

private:
  static constexpr std::uint32_t mask(std::uint8_t len) noexcept {
    return len == 0 ? 0u : (~std::uint32_t{0} << (32 - len));
  }
  static std::uint16_t tuple_of(const TrafficDescriptor& td) noexcept {
    return static_cast<std::uint16_t>((td.src.length() << 8) | td.dst.length());
  }
  static std::uint64_t mask_key(std::uint32_t src, std::uint32_t dst) noexcept {
    return (std::uint64_t{src} << 32) | dst;
  }

  struct Table {
    // Bucket rules stay sorted by id because insertion follows list order.
    std::unordered_map<std::uint64_t, std::vector<const Policy*>> rules;
  };
  std::unordered_map<std::uint16_t, Table> tuples_;
};

}  // namespace

std::unique_ptr<Classifier> make_tuple_space_classifier(std::vector<const Policy*> view) {
  return std::make_unique<TupleSpaceClassifier>(std::move(view));
}

}  // namespace sdmbox::policy
