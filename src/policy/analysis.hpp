// Static analysis of an ordered policy list.
//
// The paper's motivation is that manual middlebox policy management is
// "complex and tedious, involving unreliable and error-prone manual
// re-configuration" (§I). Once policies are first-class objects, the
// classic rule-list pathologies become mechanically checkable before the
// controller distributes anything:
//  * shadowed  — a policy whose descriptor is fully contained in an earlier
//    policy's descriptor can never be the first match; if its action list
//    differs, the operator's intent is silently overridden;
//  * redundant — shadowed with an identical action list (harmless but dead
//    weight in every P_x slice and TCAM);
//  * overlap conflict — two policies match a common flow set with different
//    action lists; legal under first-match semantics, but the list order
//    decides, so surfacing these prevents surprises when reordering.
//
// Containment checks are exact per field (prefixes, port ranges, protocol);
// shadowing is detected pairwise, the standard sound-but-not-complete
// criterion (a union of earlier rules can shadow without any single rule
// containing — such cases pass silently).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "policy/policy.hpp"

namespace sdmbox::policy {

enum class IssueKind : std::uint8_t {
  kShadowedConflict,  // never matched, and the shadowing rule acts differently
  kRedundant,         // never matched, same action list
  kOverlapConflict,   // partially overlapping descriptors, different actions
};

const char* to_string(IssueKind kind) noexcept;

struct AnalysisIssue {
  IssueKind kind;
  PolicyId policy;  // the later rule (the one affected)
  PolicyId by;      // the earlier rule causing it
  std::string detail;
};

struct AnalysisReport {
  std::vector<AnalysisIssue> issues;

  bool clean() const noexcept { return issues.empty(); }
  std::size_t count(IssueKind kind) const noexcept;
  /// All issues affecting `p`.
  std::vector<const AnalysisIssue*> affecting(PolicyId p) const;
};

/// True if every flow matching `inner` also matches `outer`.
bool descriptor_contains(const TrafficDescriptor& outer, const TrafficDescriptor& inner) noexcept;

/// Pairwise scan of the list in first-match order.
AnalysisReport analyze_policies(const PolicyList& policies);

}  // namespace sdmbox::policy
