// Hierarchical-trie classifier: a binary trie on the source prefix whose
// nodes each anchor a binary trie on the destination prefix; destination
// nodes carry the policies whose (src, dst) prefixes end exactly there,
// sorted by list order. A lookup walks the source trie along the packet's
// source address (visiting every matching source prefix), walks each
// anchored destination trie along the destination address, and linearly
// checks ports/protocol on the small candidate lists, keeping the
// lowest-numbered match.
#include <array>

#include "policy/classifier.hpp"

namespace sdmbox::policy {

namespace {

constexpr std::uint32_t kNoNode = ~std::uint32_t{0};

struct DstNode {
  std::array<std::uint32_t, 2> child{kNoNode, kNoNode};
  std::vector<const Policy*> rules;  // sorted by PolicyId (list order)
};

struct SrcNode {
  std::array<std::uint32_t, 2> child{kNoNode, kNoNode};
  std::uint32_t dst_root = kNoNode;
};

class TrieClassifier final : public Classifier {
public:
  explicit TrieClassifier(std::vector<const Policy*> view) {
    src_nodes_.push_back(SrcNode{});
    for (const Policy* p : view) insert(*p);
  }

  const Policy* first_match(const packet::FlowId& f) const override {
    const Policy* best = nullptr;
    std::uint32_t s = 0;
    for (std::uint8_t depth = 0;; ++depth) {
      const SrcNode& sn = src_nodes_[s];
      if (sn.dst_root != kNoNode) scan_dst(sn.dst_root, f, best);
      if (depth == 32) break;
      const std::uint32_t bit = (f.src.value() >> (31 - depth)) & 1;
      if (sn.child[bit] == kNoNode) break;
      s = sn.child[bit];
    }
    return best;
  }

  std::size_t memory_bytes() const override {
    std::size_t bytes = src_nodes_.size() * sizeof(SrcNode) + dst_nodes_.size() * sizeof(DstNode);
    for (const DstNode& d : dst_nodes_) bytes += d.rules.size() * sizeof(const Policy*);
    return bytes;
  }

  const char* name() const override { return "hierarchical-trie"; }

private:
  void insert(const Policy& p) {
    std::uint32_t s = 0;
    const net::Prefix& sp = p.descriptor.src;
    for (std::uint8_t depth = 0; depth < sp.length(); ++depth) {
      const std::uint32_t bit = (sp.base().value() >> (31 - depth)) & 1;
      if (src_nodes_[s].child[bit] == kNoNode) {
        src_nodes_[s].child[bit] = static_cast<std::uint32_t>(src_nodes_.size());
        src_nodes_.push_back(SrcNode{});
      }
      s = src_nodes_[s].child[bit];
    }
    if (src_nodes_[s].dst_root == kNoNode) {
      src_nodes_[s].dst_root = static_cast<std::uint32_t>(dst_nodes_.size());
      dst_nodes_.push_back(DstNode{});
    }
    std::uint32_t d = src_nodes_[s].dst_root;
    const net::Prefix& dp = p.descriptor.dst;
    for (std::uint8_t depth = 0; depth < dp.length(); ++depth) {
      const std::uint32_t bit = (dp.base().value() >> (31 - depth)) & 1;
      if (dst_nodes_[d].child[bit] == kNoNode) {
        dst_nodes_[d].child[bit] = static_cast<std::uint32_t>(dst_nodes_.size());
        dst_nodes_.push_back(DstNode{});
      }
      d = dst_nodes_[d].child[bit];
    }
    // Policies are inserted in ascending-id order, so rules stay sorted.
    SDM_DCHECK(dst_nodes_[d].rules.empty() || dst_nodes_[d].rules.back()->id < p.id);
    dst_nodes_[d].rules.push_back(&p);
  }

  void scan_dst(std::uint32_t root, const packet::FlowId& f, const Policy*& best) const {
    std::uint32_t d = root;
    for (std::uint8_t depth = 0;; ++depth) {
      for (const Policy* p : dst_nodes_[d].rules) {
        if (best && best->id < p->id) break;  // rules sorted; no better match here
        const TrafficDescriptor& td = p->descriptor;
        if (td.src_port.contains(f.src_port) && td.dst_port.contains(f.dst_port) &&
            (!td.protocol || *td.protocol == f.protocol)) {
          best = p;
          break;
        }
      }
      if (depth == 32) break;
      const std::uint32_t bit = (f.dst.value() >> (31 - depth)) & 1;
      if (dst_nodes_[d].child[bit] == kNoNode) break;
      d = dst_nodes_[d].child[bit];
    }
  }

  std::vector<SrcNode> src_nodes_;
  std::vector<DstNode> dst_nodes_;
};

}  // namespace

std::unique_ptr<Classifier> make_trie_classifier(std::vector<const Policy*> view) {
  return std::make_unique<TrieClassifier>(std::move(view));
}

}  // namespace sdmbox::policy
