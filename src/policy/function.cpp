#include "policy/function.hpp"

#include <bit>

namespace sdmbox::policy {

FunctionCatalog FunctionCatalog::standard() {
  FunctionCatalog c;
  const FunctionId fw = c.register_function("FW");
  const FunctionId ids = c.register_function("IDS");
  const FunctionId wp = c.register_function("WP");
  const FunctionId tm = c.register_function("TM");
  SDM_CHECK(fw == kFirewall && ids == kIntrusionDetection && wp == kWebProxy &&
            tm == kTrafficMeasure);
  return c;
}

FunctionId FunctionCatalog::register_function(std::string name) {
  SDM_CHECK_MSG(names_.size() < kMaxFunctions, "function catalog full");
  SDM_CHECK_MSG(!find(name).valid(), "duplicate function name");
  names_.push_back(std::move(name));
  return FunctionId{static_cast<std::uint8_t>(names_.size() - 1)};
}

const std::string& FunctionCatalog::name(FunctionId f) const {
  SDM_CHECK(f.valid() && f.v < names_.size());
  return names_[f.v];
}

FunctionId FunctionCatalog::find(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return FunctionId{static_cast<std::uint8_t>(i)};
  }
  return FunctionId{};
}

std::vector<FunctionId> FunctionCatalog::all() const {
  std::vector<FunctionId> out;
  out.reserve(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) out.push_back(FunctionId{static_cast<std::uint8_t>(i)});
  return out;
}

FunctionSet FunctionSet::universe(const FunctionCatalog& catalog) {
  FunctionSet s;
  for (FunctionId f : catalog.all()) s.insert(f);
  return s;
}

std::size_t FunctionSet::size() const noexcept { return static_cast<std::size_t>(std::popcount(bits_)); }

std::vector<FunctionId> FunctionSet::to_vector() const {
  std::vector<FunctionId> out;
  for (std::uint8_t i = 0; i < kMaxFunctions; ++i) {
    if (contains(FunctionId{i})) out.push_back(FunctionId{i});
  }
  return out;
}

}  // namespace sdmbox::policy
