#include "policy/parser.hpp"

#include <charconv>
#include <sstream>

#include "packet/packet.hpp"
#include "util/strings.hpp"

namespace sdmbox::policy {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

bool parse_prefix(const std::string& tok, net::Prefix& out) {
  if (tok == "*") {
    out = net::Prefix::wildcard();
    return true;
  }
  const auto parsed = net::Prefix::parse(tok);
  if (!parsed) return false;
  out = *parsed;
  return true;
}

bool parse_u16(const std::string& tok, std::uint16_t& out) {
  unsigned v = 0;
  const auto [end, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc{} || end != tok.data() + tok.size() || v > 65535) return false;
  out = static_cast<std::uint16_t>(v);
  return true;
}

bool parse_ports(const std::string& tok, PortRange& out) {
  if (tok == "*") {
    out = PortRange::wildcard();
    return true;
  }
  const auto dash = tok.find('-');
  if (dash == std::string::npos) {
    std::uint16_t p = 0;
    if (!parse_u16(tok, p)) return false;
    out = PortRange::exactly(p);
    return true;
  }
  std::uint16_t lo = 0, hi = 0;
  if (!parse_u16(tok.substr(0, dash), lo) || !parse_u16(tok.substr(dash + 1), hi) || lo > hi) {
    return false;
  }
  out = PortRange{lo, hi};
  return true;
}

bool parse_proto(const std::string& tok, std::optional<std::uint8_t>& out) {
  if (tok == "*") {
    out = std::nullopt;
    return true;
  }
  if (tok == "tcp") {
    out = packet::kProtoTcp;
    return true;
  }
  if (tok == "udp") {
    out = packet::kProtoUdp;
    return true;
  }
  unsigned v = 0;
  const auto [end, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc{} || end != tok.data() + tok.size() || v > 255) return false;
  out = static_cast<std::uint8_t>(v);
  return true;
}

}  // namespace

ParseResult parse_policies(const std::string& text, const FunctionCatalog& catalog) {
  ParseResult result;
  std::istringstream is(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(is, raw)) {
    ++line_no;
    // Strip comments.
    if (const auto hash = raw.find('#'); hash != std::string::npos) raw.resize(hash);
    auto tokens = tokenize(raw);
    if (tokens.empty()) continue;
    const auto fail = [&](std::string message) {
      result.errors.push_back(ParseError{line_no, std::move(message)});
    };

    // Optional "name =" prefix.
    std::string name;
    if (tokens.size() >= 2 && tokens[1] == "=") {
      name = tokens[0];
      tokens.erase(tokens.begin(), tokens.begin() + 2);
    }

    // Locate '->'.
    std::size_t arrow = tokens.size();
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i] == "->") arrow = i;
    }
    if (arrow == tokens.size() || arrow + 1 >= tokens.size()) {
      fail("expected '-> <actions>'");
      continue;
    }
    if (arrow != 4 && arrow != 5) {
      fail("expected 4 or 5 match fields before '->' (src dst sport dport [proto])");
      continue;
    }

    TrafficDescriptor td;
    if (!parse_prefix(tokens[0], td.src)) {
      fail("bad source prefix '" + tokens[0] + "'");
      continue;
    }
    if (!parse_prefix(tokens[1], td.dst)) {
      fail("bad destination prefix '" + tokens[1] + "'");
      continue;
    }
    if (!parse_ports(tokens[2], td.src_port)) {
      fail("bad source port '" + tokens[2] + "'");
      continue;
    }
    if (!parse_ports(tokens[3], td.dst_port)) {
      fail("bad destination port '" + tokens[3] + "'");
      continue;
    }
    if (arrow == 5 && !parse_proto(tokens[4], td.protocol)) {
      fail("bad protocol '" + tokens[4] + "'");
      continue;
    }

    // Action spec: tokens after the arrow joined (commas may be spaced).
    std::string spec;
    for (std::size_t i = arrow + 1; i < tokens.size(); ++i) spec += tokens[i];
    if (spec == "permit") {
      result.policies.add(td, {}, std::move(name));
      continue;
    }
    if (spec == "deny") {
      result.policies.add_deny(td, std::move(name));
      continue;
    }
    ActionList actions;
    bool bad = false;
    for (const std::string& fn_name : util::split(spec, ',')) {
      const FunctionId fn = catalog.find(fn_name);
      if (!fn.valid()) {
        fail("unknown function '" + fn_name + "'");
        bad = true;
        break;
      }
      actions.push_back(fn);
    }
    if (bad || actions.empty()) {
      if (!bad) fail("empty action list");
      continue;
    }
    result.policies.add(td, std::move(actions), std::move(name));
  }
  return result;
}

std::string format_policy(const Policy& policy, const FunctionCatalog& catalog) {
  const auto prefix_str = [](const net::Prefix& p) {
    return p.is_wildcard() ? std::string("*") : p.to_string();
  };
  std::string out;
  if (!policy.name.empty()) out += policy.name + " = ";
  const TrafficDescriptor& td = policy.descriptor;
  out += prefix_str(td.src) + " " + prefix_str(td.dst) + " " + td.src_port.to_string() + " " +
         td.dst_port.to_string();
  if (td.protocol) {
    if (*td.protocol == packet::kProtoTcp) {
      out += " tcp";
    } else if (*td.protocol == packet::kProtoUdp) {
      out += " udp";
    } else {
      out += " " + std::to_string(*td.protocol);
    }
  }
  out += " -> ";
  if (policy.deny) {
    out += "deny";
  } else if (policy.actions.empty()) {
    out += "permit";
  } else {
    for (std::size_t i = 0; i < policy.actions.size(); ++i) {
      if (i) out += ",";
      out += catalog.name(policy.actions[i]);
    }
  }
  return out;
}

std::string format_policies(const PolicyList& policies, const FunctionCatalog& catalog) {
  std::string out;
  for (const Policy& p : policies.all()) {
    out += format_policy(p, catalog);
    out += "\n";
  }
  return out;
}

}  // namespace sdmbox::policy
