// Network functions (the Π of the paper) and sets thereof.
//
// A middlebox implements one or more network functions; a policy's action
// list is an ordered sequence of functions. The evaluation uses four — FW,
// IDS, WP (web proxy) and TM (traffic measurement) — but the architecture is
// open-ended, so functions are a small registry of ids with names, capped at
// 64 so sets are a single word.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace sdmbox::policy {

/// Strongly typed network-function id.
struct FunctionId {
  std::uint8_t v = kInvalid;
  static constexpr std::uint8_t kInvalid = 0xff;
  constexpr bool valid() const noexcept { return v != kInvalid; }
  friend constexpr auto operator<=>(FunctionId, FunctionId) noexcept = default;
};

inline constexpr std::size_t kMaxFunctions = 64;

/// The four functions used throughout the paper's evaluation (§IV.A). A
/// FunctionCatalog created with `FunctionCatalog::standard()` registers them
/// at exactly these ids.
inline constexpr FunctionId kFirewall{0};          // FW
inline constexpr FunctionId kIntrusionDetection{1};  // IDS
inline constexpr FunctionId kWebProxy{2};          // WP
inline constexpr FunctionId kTrafficMeasure{3};    // TM

/// Registry of function ids to human-readable names.
class FunctionCatalog {
public:
  /// Catalog with FW, IDS, WP, TM pre-registered.
  static FunctionCatalog standard();

  FunctionId register_function(std::string name);
  const std::string& name(FunctionId f) const;
  /// Lookup by name; invalid id if unknown.
  FunctionId find(const std::string& name) const noexcept;
  std::size_t size() const noexcept { return names_.size(); }

  /// All registered ids in registration order.
  std::vector<FunctionId> all() const;

private:
  std::vector<std::string> names_;
};

/// A set of network functions as a 64-bit mask (Π, Π_x in the paper).
class FunctionSet {
public:
  constexpr FunctionSet() noexcept = default;

  static FunctionSet of(std::initializer_list<FunctionId> fs) {
    FunctionSet s;
    for (FunctionId f : fs) s.insert(f);
    return s;
  }

  /// All functions registered in a catalog.
  static FunctionSet universe(const FunctionCatalog& catalog);

  void insert(FunctionId f) {
    SDM_CHECK(f.valid() && f.v < kMaxFunctions);
    bits_ |= (std::uint64_t{1} << f.v);
  }
  void erase(FunctionId f) {
    SDM_CHECK(f.valid() && f.v < kMaxFunctions);
    bits_ &= ~(std::uint64_t{1} << f.v);
  }
  constexpr bool contains(FunctionId f) const noexcept {
    return f.valid() && f.v < kMaxFunctions && (bits_ >> f.v) & 1;
  }
  constexpr bool empty() const noexcept { return bits_ == 0; }
  std::size_t size() const noexcept;

  /// Set difference: functions in this set but not in `other` (used to form
  /// Π_x = Π \ functions-of-x).
  constexpr FunctionSet minus(FunctionSet other) const noexcept {
    FunctionSet s;
    s.bits_ = bits_ & ~other.bits_;
    return s;
  }

  std::vector<FunctionId> to_vector() const;

  friend constexpr auto operator<=>(FunctionSet, FunctionSet) noexcept = default;

private:
  std::uint64_t bits_ = 0;
};

}  // namespace sdmbox::policy
