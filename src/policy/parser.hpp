// Text format for policy lists — the operator-facing syntax of the paper's
// Table I, one policy per line, first-match order:
//
//   # web traffic inside the enterprise is fine
//   permit-internal = 128.40.0.0/16 128.40.0.0/16 * 80 -> permit
//   inbound-web     = *             128.40.0.0/16 * 80 -> FW,IDS
//   outbound-web    = 128.40.0.0/16 *             * 80 -> FW,IDS,WP
//   no-telnet       = *             *             * 23 -> deny
//
// Grammar per line (tokens whitespace-separated):
//   [name '='] <src> <dst> <sport> <dport> [proto] '->' <actions>
//   src, dst  : '*' | CIDR prefix | bare address (/32)
//   ports     : '*' | N | N-M
//   proto     : 'tcp' | 'udp' | numeric  (optional; '*' also accepted)
//   actions   : 'permit' | 'deny' | comma-separated function names from the
//               catalog (e.g. FW,IDS,WP)
// '#' starts a comment; blank lines are ignored.
#pragma once

#include <string>
#include <vector>

#include "policy/function.hpp"
#include "policy/policy.hpp"

namespace sdmbox::policy {

struct ParseError {
  std::size_t line = 0;  // 1-based
  std::string message;
};

struct ParseResult {
  PolicyList policies;
  std::vector<ParseError> errors;

  bool ok() const noexcept { return errors.empty(); }
};

/// Parse a whole policy file; policies keep file order (= match priority).
/// Lines with errors are skipped and reported; parsing continues.
ParseResult parse_policies(const std::string& text, const FunctionCatalog& catalog);

/// Render one policy in the exact syntax parse_policies accepts.
std::string format_policy(const Policy& policy, const FunctionCatalog& catalog);

/// Render the whole list; parse_policies(format_policies(L)) == L.
std::string format_policies(const PolicyList& policies, const FunctionCatalog& catalog);

}  // namespace sdmbox::policy
