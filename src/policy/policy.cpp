#include "policy/policy.hpp"

#include <algorithm>

namespace sdmbox::policy {

std::string PortRange::to_string() const {
  if (is_wildcard()) return "*";
  if (lo == hi) return std::to_string(lo);
  return std::to_string(lo) + "-" + std::to_string(hi);
}

std::string TrafficDescriptor::to_string() const {
  const auto prefix_str = [](const net::Prefix& p) {
    return p.is_wildcard() ? std::string("*") : p.to_string();
  };
  std::string out = prefix_str(src) + ":" + src_port.to_string() + " -> " + prefix_str(dst) + ":" +
                    dst_port.to_string();
  if (protocol) out += " proto=" + std::to_string(*protocol);
  return out;
}

int Policy::action_index(FunctionId f) const noexcept {
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (actions[i] == f) return static_cast<int>(i);
  }
  return -1;
}

PolicyId PolicyList::add(TrafficDescriptor descriptor, ActionList actions, std::string name) {
  const PolicyId id{static_cast<std::uint32_t>(policies_.size())};
  policies_.push_back(Policy{id, descriptor, std::move(actions), false, std::move(name)});
  return id;
}

PolicyId PolicyList::add_deny(TrafficDescriptor descriptor, std::string name) {
  const PolicyId id{static_cast<std::uint32_t>(policies_.size())};
  policies_.push_back(Policy{id, descriptor, {}, true, std::move(name)});
  return id;
}

const Policy* PolicyList::first_match(const packet::FlowId& f) const noexcept {
  for (const Policy& p : policies_) {
    if (p.descriptor.matches(f)) return &p;
  }
  return nullptr;
}

std::vector<const Policy*> PolicyList::all_pointers() const {
  std::vector<const Policy*> out;
  out.reserve(policies_.size());
  for (const Policy& p : policies_) out.push_back(&p);
  return out;
}

std::vector<const Policy*> PolicyList::subset_pointers(const std::vector<PolicyId>& ids) const {
  std::vector<const Policy*> out;
  out.reserve(ids.size());
  for (const PolicyId id : ids) out.push_back(&at(id));
  std::sort(out.begin(), out.end(),
            [](const Policy* a, const Policy* b) { return a->id < b->id; });
  return out;
}

const Policy* first_match_in(const std::vector<const Policy*>& view,
                             const packet::FlowId& f) noexcept {
  for (const Policy* p : view) {
    if (p->descriptor.matches(f)) return p;
  }
  return nullptr;
}

}  // namespace sdmbox::policy
