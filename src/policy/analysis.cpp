#include "policy/analysis.hpp"

namespace sdmbox::policy {

const char* to_string(IssueKind kind) noexcept {
  switch (kind) {
    case IssueKind::kShadowedConflict: return "shadowed-conflict";
    case IssueKind::kRedundant: return "redundant";
    case IssueKind::kOverlapConflict: return "overlap-conflict";
  }
  return "?";
}

std::size_t AnalysisReport::count(IssueKind kind) const noexcept {
  std::size_t n = 0;
  for (const AnalysisIssue& issue : issues) n += issue.kind == kind;
  return n;
}

std::vector<const AnalysisIssue*> AnalysisReport::affecting(PolicyId p) const {
  std::vector<const AnalysisIssue*> out;
  for (const AnalysisIssue& issue : issues) {
    if (issue.policy == p) out.push_back(&issue);
  }
  return out;
}

namespace {

/// Two policies have the same effect iff both deny, or both run the same
/// chain (empty chain = permit).
bool same_effect(const Policy& a, const Policy& b) noexcept {
  return a.deny == b.deny && a.actions == b.actions;
}

bool range_contains(PortRange outer, PortRange inner) noexcept {
  return outer.lo <= inner.lo && inner.hi <= outer.hi;
}

bool proto_contains(const std::optional<std::uint8_t>& outer,
                    const std::optional<std::uint8_t>& inner) noexcept {
  if (!outer) return true;              // wildcard contains everything
  return inner && *inner == *outer;     // exact contains only the same value
}

}  // namespace

bool descriptor_contains(const TrafficDescriptor& outer,
                         const TrafficDescriptor& inner) noexcept {
  return outer.src.contains(inner.src) && outer.dst.contains(inner.dst) &&
         range_contains(outer.src_port, inner.src_port) &&
         range_contains(outer.dst_port, inner.dst_port) &&
         proto_contains(outer.protocol, inner.protocol);
}

AnalysisReport analyze_policies(const PolicyList& policies) {
  AnalysisReport report;
  const auto& all = policies.all();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Policy& later = all[i];
    std::vector<AnalysisIssue> overlaps;
    bool dead = false;
    for (std::size_t j = 0; j < i && !dead; ++j) {
      const Policy& earlier = all[j];
      if (descriptor_contains(earlier.descriptor, later.descriptor)) {
        // The later rule can never be the first match; any overlap warnings
        // about a dead rule would be noise, so report only the shadow.
        const bool same_actions = same_effect(earlier, later);
        report.issues.push_back(AnalysisIssue{
            same_actions ? IssueKind::kRedundant : IssueKind::kShadowedConflict, later.id,
            earlier.id,
            "policy '" + later.name + "' is fully covered by earlier policy '" + earlier.name +
                (same_actions ? "' with the same actions" : "' with DIFFERENT actions")});
        dead = true;
        break;
      }
      if (earlier.descriptor.overlaps(later.descriptor) && !same_effect(earlier, later)) {
        overlaps.push_back(AnalysisIssue{
            IssueKind::kOverlapConflict, later.id, earlier.id,
            "policies '" + earlier.name + "' and '" + later.name +
                "' overlap with different action lists; list order decides"});
      }
    }
    if (!dead) {
      for (auto& issue : overlaps) report.issues.push_back(std::move(issue));
    }
  }
  return report;
}

}  // namespace sdmbox::policy
