// Multi-field packet classification (§III.D references [8]-[11]).
//
// Two interchangeable engines behind one interface:
//  * LinearClassifier — scan the ordered policy list; exact reference
//    implementation, O(n) per lookup.
//  * TrieClassifier — hierarchical source-trie -> destination-trie with a
//    per-leaf priority list for the port/protocol fields; the "trie-based
//    data structures" software lookup the paper mentions as the TCAM
//    alternative.
//
// Both return the FIRST matching policy in list order. A property-based test
// sweeps random rule sets and flows asserting the two agree.
#pragma once

#include <cstddef>
#include <memory>

#include "packet/packet.hpp"
#include "policy/policy.hpp"

namespace sdmbox::policy {

class Classifier {
public:
  virtual ~Classifier() = default;

  /// First matching policy in list order; nullptr if none.
  virtual const Policy* first_match(const packet::FlowId& f) const = 0;

  /// Approximate resident bytes (for the classifier ablation bench).
  virtual std::size_t memory_bytes() const = 0;

  virtual const char* name() const = 0;
};

/// Classifiers are built over an id-ordered policy view (the whole list or a
/// device's P_x slice); the pointed-to policies must outlive the classifier.
std::unique_ptr<Classifier> make_linear_classifier(std::vector<const Policy*> view);
std::unique_ptr<Classifier> make_trie_classifier(std::vector<const Policy*> view);
std::unique_ptr<Classifier> make_tuple_space_classifier(std::vector<const Policy*> view);

inline std::unique_ptr<Classifier> make_linear_classifier(const PolicyList& policies) {
  return make_linear_classifier(policies.all_pointers());
}
inline std::unique_ptr<Classifier> make_trie_classifier(const PolicyList& policies) {
  return make_trie_classifier(policies.all_pointers());
}
inline std::unique_ptr<Classifier> make_tuple_space_classifier(const PolicyList& policies) {
  return make_tuple_space_classifier(policies.all_pointers());
}

}  // namespace sdmbox::policy
