// Policies: traffic descriptors + ordered action lists (§II).
//
// A policy's traffic descriptor is a multi-field predicate over the 5-tuple
// — source/destination address prefixes, source/destination port ranges and
// an optional protocol — with wildcards allowed in every field, exactly as
// in the paper's Table I examples. An ordered policy list applies
// first-match semantics.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ip.hpp"
#include "packet/packet.hpp"
#include "policy/function.hpp"

namespace sdmbox::policy {

/// Inclusive port range; [0, 65535] is the wildcard.
struct PortRange {
  std::uint16_t lo = 0;
  std::uint16_t hi = 65535;

  static constexpr PortRange wildcard() noexcept { return {0, 65535}; }
  static constexpr PortRange exactly(std::uint16_t p) noexcept { return {p, p}; }

  constexpr bool contains(std::uint16_t p) const noexcept { return lo <= p && p <= hi; }
  constexpr bool is_wildcard() const noexcept { return lo == 0 && hi == 65535; }
  constexpr bool overlaps(PortRange o) const noexcept { return lo <= o.hi && o.lo <= hi; }

  friend constexpr auto operator<=>(PortRange, PortRange) noexcept = default;

  std::string to_string() const;
};

/// The multi-field predicate of a policy.
struct TrafficDescriptor {
  net::Prefix src = net::Prefix::wildcard();
  net::Prefix dst = net::Prefix::wildcard();
  PortRange src_port = PortRange::wildcard();
  PortRange dst_port = PortRange::wildcard();
  std::optional<std::uint8_t> protocol;  // nullopt = wildcard

  bool matches(const packet::FlowId& f) const noexcept {
    return src.contains(f.src) && dst.contains(f.dst) && src_port.contains(f.src_port) &&
           dst_port.contains(f.dst_port) && (!protocol || *protocol == f.protocol);
  }

  /// Conservative overlap test: true if some flow could match both
  /// descriptors (used by the controller to compute P_x relevance).
  bool overlaps(const TrafficDescriptor& o) const noexcept {
    return src.overlaps(o.src) && dst.overlaps(o.dst) && src_port.overlaps(o.src_port) &&
           dst_port.overlaps(o.dst_port) && (!protocol || !o.protocol || *protocol == *o.protocol);
  }

  std::string to_string() const;
};

/// Stable policy identifier: the index in the networkwide ordered list P.
struct PolicyId {
  std::uint32_t v = kInvalid;
  static constexpr std::uint32_t kInvalid = ~std::uint32_t{0};
  constexpr bool valid() const noexcept { return v != kInvalid; }
  friend constexpr auto operator<=>(PolicyId, PolicyId) noexcept = default;
};

/// Ordered action list; empty means "permit" (forward with no processing).
using ActionList = std::vector<FunctionId>;

struct Policy {
  PolicyId id;
  TrafficDescriptor descriptor;
  ActionList actions;
  /// Deny rule: matching traffic is dropped at the policy proxy — inline
  /// firewalling without consuming a middlebox. Mutually exclusive with a
  /// non-empty action list.
  bool deny = false;
  std::string name;  // diagnostic label, e.g. "inbound-web-protect"

  bool is_permit() const noexcept { return actions.empty() && !deny; }

  /// Position of `f` in the action list, or -1.
  int action_index(FunctionId f) const noexcept;

  /// The function after position i, or invalid if i is the last.
  FunctionId next_after(std::size_t i) const noexcept {
    return i + 1 < actions.size() ? actions[i + 1] : FunctionId{};
  }
};

/// The networkwide ordered policy list P with first-match semantics.
class PolicyList {
public:
  PolicyId add(TrafficDescriptor descriptor, ActionList actions, std::string name = {});

  /// Add a deny rule: first-matching traffic is dropped at the proxy.
  PolicyId add_deny(TrafficDescriptor descriptor, std::string name = {});

  std::size_t size() const noexcept { return policies_.size(); }
  bool empty() const noexcept { return policies_.empty(); }
  const Policy& at(PolicyId id) const {
    SDM_CHECK(id.v < policies_.size());
    return policies_[id.v];
  }
  const std::vector<Policy>& all() const noexcept { return policies_; }

  /// First policy matching the flow, in list order; nullptr if none.
  const Policy* first_match(const packet::FlowId& f) const noexcept;

  /// Pointers to all policies in list order (classifier input). Invalidated
  /// by add().
  std::vector<const Policy*> all_pointers() const;

  /// Pointers to the given subset, sorted by id (preserves first-match order
  /// within the subset). Used to build per-device P_x classifiers.
  std::vector<const Policy*> subset_pointers(const std::vector<PolicyId>& ids) const;

private:
  std::vector<Policy> policies_;
};

/// First match over an id-ordered policy view (e.g. a device's P_x slice).
const Policy* first_match_in(const std::vector<const Policy*>& view, const packet::FlowId& f) noexcept;

}  // namespace sdmbox::policy
