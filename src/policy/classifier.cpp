#include "policy/classifier.hpp"

namespace sdmbox::policy {

namespace {

class LinearClassifier final : public Classifier {
public:
  explicit LinearClassifier(std::vector<const Policy*> view) : view_(std::move(view)) {}

  const Policy* first_match(const packet::FlowId& f) const override {
    return first_match_in(view_, f);
  }

  std::size_t memory_bytes() const override {
    return view_.size() * (sizeof(const Policy*) + sizeof(Policy));
  }

  const char* name() const override { return "linear"; }

private:
  std::vector<const Policy*> view_;
};

}  // namespace

std::unique_ptr<Classifier> make_linear_classifier(std::vector<const Policy*> view) {
  return std::make_unique<LinearClassifier>(std::move(view));
}

}  // namespace sdmbox::policy
