// Simplex solvers for the controller's load-balancing LPs.
//
// Two engines, selected by SimplexOptions::engine:
//  * kSparse (default) — revised simplex on a CSC-stored constraint matrix.
//    The basis is held as an LU factorization plus a product-form eta file,
//    refactorized periodically; FTRAN/BTRAN are sparse triangular solves.
//    Simple bounds are handled implicitly (bounded-variable ratio test with
//    bound flips), so Eq. (2)'s capacity rows need no explicit slack
//    columns. Scales to the ISP-sized worlds built by examples/waxman_scale.
//  * kDense — the original two-phase tableau, kept as a cross-check oracle
//    for small models (O(rows x cols) per pivot; default bounds only).
// Both engines use Dantzig pricing with an automatic switch to Bland's rule
// after a run of degenerate pivots, which guarantees termination, and both
// are deterministic: the same model and options always produce the same
// pivot sequence, so downstream exports are byte-identical across reruns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lp/model.hpp"

namespace sdmbox::lp {

enum class SolveStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

const char* to_string(SolveStatus s) noexcept;

enum class SimplexEngine : std::uint8_t {
  kSparse,  // revised simplex, LU + eta file (default)
  kDense,   // dense tableau oracle
};

const char* to_string(SimplexEngine e) noexcept;

/// Where a variable sits in an optimal basis. Nonbasic variables rest on a
/// bound (or at zero for free variables); basic variables carry the solve.
enum class VarStatus : std::uint8_t { kAtLower, kAtUpper, kNonbasicFree, kBasic };

/// Optimal basis exported by the sparse engine: one status per structural
/// variable and one per constraint row's implicit logical variable. Feed it
/// back through SimplexOptions::warm_start to re-solve a same-shaped model
/// from the previous optimum (the incremental-reoptimization hook).
struct Basis {
  std::vector<VarStatus> structural;
  std::vector<VarStatus> logical;
  bool empty() const noexcept { return structural.empty() && logical.empty(); }
};

struct SimplexOptions {
  double tolerance = 1e-9;
  /// Max pivots per phase; 0 derives a limit from the model size.
  std::size_t max_iterations = 0;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  std::size_t degenerate_switch = 64;
  SimplexEngine engine = SimplexEngine::kSparse;
  /// Sparse engine: basis updates between LU refactorizations (eta-file
  /// length). Smaller = more stable, larger = faster per pivot.
  std::size_t refactor_interval = 64;
  /// Sparse engine: start from this basis instead of the all-logical one.
  /// Ignored (cold start) when the shape mismatches, the basis is singular,
  /// or its vertex is primal-infeasible for the new model. Not owned; must
  /// outlive the solve() call.
  const Basis* warm_start = nullptr;
};

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0;
  std::vector<double> values;  // indexed by VarId.v
  std::size_t pivots = 0;
  /// Optimal basis (sparse engine only; empty from the dense oracle).
  Basis basis;
  /// True when the sparse engine accepted options.warm_start.
  bool warm_started = false;

  double value(VarId v) const {
    SDM_CHECK(v.v < values.size());
    return values[v.v];
  }
  bool optimal() const noexcept { return status == SolveStatus::kOptimal; }
};

/// Minimize the model's objective subject to its constraints and bounds.
Solution solve(const LpModel& model, const SimplexOptions& options = {});

/// Sparse revised simplex entry point (called through solve()).
Solution solve_sparse(const LpModel& model, const SimplexOptions& options);

/// Verify a candidate solution against the model within `tolerance`
/// (bounds + every constraint). Used by tests and as a postcondition
/// in the controller. Returns a human-readable violation, or empty if valid.
std::string check_feasible(const LpModel& model, const std::vector<double>& values,
                           double tolerance = 1e-6);

}  // namespace sdmbox::lp
