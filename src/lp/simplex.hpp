// Two-phase primal simplex on a dense tableau.
//
// Written from scratch (no external solver dependency) for the controller's
// load-balancing LPs. Design choices:
//  * dense tableau — the Eq. (2) instances we solve are a few thousand
//    variables by a few thousand constraints after source aggregation, where
//    dense row operations are simple and fast enough (seconds, offline at
//    the controller, matching the paper's "calculation is done offline");
//  * Dantzig pricing (most negative reduced cost) with an automatic switch
//    to Bland's rule after a run of degenerate pivots, which guarantees
//    termination;
//  * two phases — artificial variables are driven out in phase 1, so
//    arbitrary =/>= constraints are supported.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lp/model.hpp"

namespace sdmbox::lp {

enum class SolveStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

const char* to_string(SolveStatus s) noexcept;

struct SimplexOptions {
  double tolerance = 1e-9;
  /// Max pivots per phase; 0 derives a limit from the model size.
  std::size_t max_iterations = 0;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  std::size_t degenerate_switch = 64;
};

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0;
  std::vector<double> values;  // indexed by VarId.v
  std::size_t pivots = 0;

  double value(VarId v) const {
    SDM_CHECK(v.v < values.size());
    return values[v.v];
  }
  bool optimal() const noexcept { return status == SolveStatus::kOptimal; }
};

/// Minimize the model's objective subject to its constraints, x >= 0.
Solution solve(const LpModel& model, const SimplexOptions& options = {});

/// Verify a candidate solution against the model within `tolerance`
/// (non-negativity + every constraint). Used by tests and as a postcondition
/// in the controller. Returns a human-readable violation, or empty if valid.
std::string check_feasible(const LpModel& model, const std::vector<double>& values,
                           double tolerance = 1e-6);

}  // namespace sdmbox::lp
