// Sparse revised simplex with bounded variables.
//
// The constraint matrix is stored once in CSC form; every row is treated as
// an equality by giving it an implicit unit logical column whose bounds
// encode the relation (<=: [0,inf), >=: (-inf,0], =: [0,0]), so capacity
// rows need no explicit slack columns. Rows whose logical start value
// violates those bounds get an implicit signed artificial column; phase 1
// minimizes the artificial sum, after which artificials are fixed to [0,0]
// and the bounded ratio test keeps them out. The basis inverse is an LU
// factorization (GPLU-style left-looking with partial pivoting, columns
// eliminated in fill-reducing nnz order) composed with a product-form eta
// file; the file is folded back into a fresh LU every refactor_interval
// updates or when a pivot element looks unstable. Everything — pricing
// sections, tie-breaks, pivot order — is index-deterministic: the same
// model and options give the same pivot sequence, bit for bit.
//
// Warm starts (SimplexOptions::warm_start) reuse a previous optimal basis
// of a same-shaped model. A changed RHS usually leaves a few basics outside
// their bounds; a dedicated repair phase (bound-shifted phase 1, see
// repair_warm_basis) drives them back before the regular phase 2 runs, and
// falls back to a cold start when the basis is genuinely unusable.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "lp/simplex.hpp"

namespace sdmbox::lp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kPivotTol = 1e-9;      // ratio-test pivot threshold
constexpr double kEtaPivotTol = 1e-7;   // eta pivot below this forces a refactor
constexpr double kSingularTol = 1e-11;  // LU pivot below this means singular
constexpr double kFeasTol = 1e-7;       // primal feasibility slack (phase 1, warm start)

/// One product-form update: B_new = B_old * E where column `pivot` of E is
/// the FTRAN'd entering column (pivot element stored separately).
struct Eta {
  std::int32_t pivot = 0;
  double pivot_val = 1.0;
  std::vector<std::pair<std::int32_t, double>> off;  // (basis position, value), pivot excluded
};

/// LU factors of the basis. L is unit lower triangular in elimination
/// order, stored as per-step columns of row-space entries; U is stored as
/// per-step columns of step-space entries plus the diagonal. prow maps
/// elimination step -> pivot row, cq maps step -> basis position.
class LuFactors {
public:
  /// Factor the m columns produced by get_col(position, out). `order` is
  /// the elimination order over basis positions. Returns false if singular.
  template <typename GetCol>
  bool factorize(std::size_t m, GetCol&& get_col,
                 const std::vector<std::int32_t>& order) {
    m_ = m;
    prow_.assign(m, -1);
    cq_.assign(m, -1);
    step_of_row_.assign(m, -1);
    lcols_.assign(m, {});
    ucols_.assign(m, {});
    udiag_.assign(m, 0.0);
    work_.assign(m, 0.0);
    mark_.assign(m, 0);
    stamp_ = 0;

    std::vector<std::pair<std::int32_t, double>> col;
    std::vector<std::int32_t> touched;
    // Min-heap of elimination steps still to apply to the current column.
    // Updates from step s only ever touch rows pivoted after s, so a plain
    // ordered drain is a correct (and simple) sparse triangular solve.
    std::priority_queue<std::int32_t, std::vector<std::int32_t>, std::greater<>> heap;

    for (std::size_t t = 0; t < m; ++t) {
      ++stamp_;
      touched.clear();
      col.clear();
      get_col(order[t], col);
      for (const auto& [r, v] : col) {
        work_[r] = v;
        mark_[r] = stamp_;
        touched.push_back(r);
        if (step_of_row_[r] >= 0) heap.push(step_of_row_[r]);
      }
      while (!heap.empty()) {
        const std::int32_t s = heap.top();
        heap.pop();
        const double val = work_[prow_[s]];
        if (val == 0.0) continue;
        for (const auto& [i, l] : lcols_[s]) {
          if (mark_[i] != stamp_) {
            mark_[i] = stamp_;
            work_[i] = 0.0;
            touched.push_back(i);
            if (step_of_row_[i] >= 0) heap.push(step_of_row_[i]);
          }
          work_[i] -= l * val;
        }
      }
      // Pivot: largest magnitude among not-yet-pivoted rows, smallest row
      // index on ties (determinism).
      std::int32_t rpiv = -1;
      double best = kSingularTol;
      std::sort(touched.begin(), touched.end());
      for (const std::int32_t r : touched) {
        if (step_of_row_[r] >= 0) continue;
        const double a = std::abs(work_[r]);
        if (a > best) {
          best = a;
          rpiv = r;
        }
      }
      if (rpiv < 0) {
        for (const std::int32_t r : touched) work_[r] = 0.0;
        return false;
      }
      const double pv = work_[rpiv];
      auto& ucol = ucols_[t];
      auto& lcol = lcols_[t];
      for (const std::int32_t r : touched) {
        const double v = work_[r];
        work_[r] = 0.0;
        if (v == 0.0 || r == rpiv) continue;
        if (step_of_row_[r] >= 0) {
          ucol.emplace_back(step_of_row_[r], v);
        } else {
          lcol.emplace_back(r, v / pv);
        }
      }
      udiag_[t] = pv;
      prow_[t] = rpiv;
      step_of_row_[rpiv] = static_cast<std::int32_t>(t);
      cq_[t] = order[t];
    }
    return true;
  }

  /// w = B^-1 a. `a` is a sparse row-space column; `w` comes back dense in
  /// basis-position space.
  void ftran(const std::vector<std::pair<std::int32_t, double>>& a,
             std::vector<double>& w) const {
    work_.assign(m_, 0.0);
    for (const auto& [r, v] : a) work_[r] += v;
    for (std::size_t t = 0; t < m_; ++t) {
      const double val = work_[prow_[t]];
      if (val == 0.0) continue;
      for (const auto& [i, l] : lcols_[t]) work_[i] -= l * val;
    }
    w.assign(m_, 0.0);
    for (std::size_t tt = m_; tt-- > 0;) {
      const double z = work_[prow_[tt]] / udiag_[tt];
      if (z != 0.0) {
        for (const auto& [s, u] : ucols_[tt]) work_[prow_[s]] -= u * z;
      }
      w[cq_[tt]] = z;
    }
  }

  /// y = B^-T c. `c` is dense in basis-position space; `y` comes back dense
  /// in row space.
  void btran(const std::vector<double>& c, std::vector<double>& y) const {
    g_.assign(m_, 0.0);
    for (std::size_t t = 0; t < m_; ++t) {
      double acc = c[cq_[t]];
      for (const auto& [s, u] : ucols_[t]) acc -= u * g_[s];
      g_[t] = acc / udiag_[t];
    }
    y.assign(m_, 0.0);
    for (std::size_t tt = m_; tt-- > 0;) {
      double acc = g_[tt];
      for (const auto& [i, l] : lcols_[tt]) acc -= l * y[i];
      y[prow_[tt]] = acc;
    }
  }

private:
  std::size_t m_ = 0;
  std::vector<std::int32_t> prow_;         // step -> pivot row
  std::vector<std::int32_t> cq_;           // step -> basis position
  std::vector<std::int32_t> step_of_row_;  // row -> step (-1 during factorization)
  std::vector<std::vector<std::pair<std::int32_t, double>>> lcols_;
  std::vector<std::vector<std::pair<std::int32_t, double>>> ucols_;
  std::vector<double> udiag_;
  mutable std::vector<double> work_;
  mutable std::vector<double> g_;
  std::vector<std::int32_t> mark_;
  std::int32_t stamp_ = 0;
};

class SparseSimplex {
public:
  SparseSimplex(const LpModel& model, const SimplexOptions& opt) : model_(model), opt_(opt) {
    n_ = model.variable_count();
    m_ = model.constraint_count();
    build_matrix();
  }

  Solution run() {
    Solution sol;
    bool warm = try_warm_start();
    if (warm && !repair_.empty() && !repair_warm_basis(sol.pivots)) {
      warm = false;  // repair stalled: rebuild from scratch, honestly cold
    }
    sol.warm_started = warm;
    if (!warm) init_cold();

    const std::size_t limit =
        opt_.max_iterations != 0 ? opt_.max_iterations : 50 * (m_ + ntot_) + 10000;

    if (!warm && art_count_ > 0) {
      // Phase 1: minimize the artificial sum.
      cost_.assign(ntot_, 0.0);
      for (std::size_t j = n_ + m_; j < ntot_; ++j) cost_[j] = 1.0;
      const SolveStatus st = iterate(limit, sol.pivots, /*phase1=*/true);
      if (st != SolveStatus::kOptimal) {
        sol.status = st == SolveStatus::kUnbounded ? SolveStatus::kInfeasible : st;
        return sol;
      }
      double art_mass = 0.0;
      for (std::size_t pos = 0; pos < m_; ++pos) {
        if (static_cast<std::size_t>(basis_[pos]) >= n_ + m_) art_mass += std::abs(xb_[pos]);
      }
      if (art_mass > kFeasTol) {
        sol.status = SolveStatus::kInfeasible;
        sol.pivots = total_pivots_;
        return sol;
      }
      // Fix artificials at zero; any still basic sit at value 0 and the
      // bounded ratio test expels them on first contact — no drive-out pass.
      for (std::size_t j = n_ + m_; j < ntot_; ++j) lo_[j] = hi_[j] = 0.0;
      for (std::size_t pos = 0; pos < m_; ++pos) {
        if (static_cast<std::size_t>(basis_[pos]) >= n_ + m_) xb_[pos] = 0.0;
      }
    }

    // Phase 2: the real objective (artificials cost 0 and are fixed).
    cost_.assign(ntot_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) cost_[j] = model_.objective()[j];
    sol.status = iterate(limit, sol.pivots, /*phase1=*/false);
    if (sol.status != SolveStatus::kOptimal) return sol;

    // One last refactorization tightens xB before extraction: the eta file
    // accumulates roundoff that a fresh LU solve removes.
    if (!etas_.empty()) {
      if (!refactorize()) {
        sol.status = SolveStatus::kIterationLimit;
        return sol;
      }
      compute_xb();
    }
    extract(sol);
    return sol;
  }

private:
  void build_matrix() {
    const auto& constraints = model_.constraints();
    col_start_.assign(n_ + 1, 0);
    for (const Constraint& c : constraints) {
      for (const Term& t : c.terms) ++col_start_[t.var.v + 1];
    }
    for (std::size_t j = 0; j < n_; ++j) col_start_[j + 1] += col_start_[j];
    row_idx_.resize(col_start_[n_]);
    a_val_.resize(col_start_[n_]);
    std::vector<std::int32_t> fill(col_start_.begin(), col_start_.end() - 1);
    b_.assign(m_, 0.0);
    log_lo_.assign(m_, 0.0);
    log_hi_.assign(m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      const Constraint& c = constraints[i];
      for (const Term& t : c.terms) {
        const std::int32_t at = fill[t.var.v]++;
        row_idx_[at] = static_cast<std::int32_t>(i);
        a_val_[at] = t.coeff;
      }
      b_[i] = c.rhs;
      switch (c.relation) {
        case Relation::kLessEqual: log_lo_[i] = 0.0, log_hi_[i] = kInf; break;
        case Relation::kGreaterEqual: log_lo_[i] = -kInf, log_hi_[i] = 0.0; break;
        case Relation::kEqual: log_lo_[i] = 0.0, log_hi_[i] = 0.0; break;
      }
    }
  }

  /// Bounds/columns are addressed over one variable index space:
  /// [0, n) structural, [n, n+m) logical, [n+m, ntot) artificial.
  void gather_col(std::int32_t pos, std::vector<std::pair<std::int32_t, double>>& out) const {
    const std::size_t j = static_cast<std::size_t>(basis_[pos]);
    append_col(j, out);
  }

  void append_col(std::size_t j, std::vector<std::pair<std::int32_t, double>>& out) const {
    if (j < n_) {
      for (std::int32_t k = col_start_[j]; k < col_start_[j + 1]; ++k) {
        out.emplace_back(row_idx_[k], a_val_[k]);
      }
    } else if (j < n_ + m_) {
      out.emplace_back(static_cast<std::int32_t>(j - n_), 1.0);
    } else {
      out.emplace_back(art_row_[j - n_ - m_], art_sign_[j - n_ - m_]);
    }
  }

  std::size_t col_nnz(std::size_t j) const {
    return j < n_ ? static_cast<std::size_t>(col_start_[j + 1] - col_start_[j]) : 1;
  }

  double nonbasic_value(std::size_t j) const {
    switch (vstat_[j]) {
      case VarStatus::kAtLower: return lo_[j];
      case VarStatus::kAtUpper: return hi_[j];
      case VarStatus::kNonbasicFree: return 0.0;
      case VarStatus::kBasic: break;
    }
    SDM_CHECK_MSG(false, "nonbasic_value on a basic variable");
    return 0.0;
  }

  void setup_bounds(std::size_t total) {
    lo_.assign(total, 0.0);
    hi_.assign(total, kInf);
    for (std::size_t j = 0; j < n_; ++j) {
      lo_[j] = model_.lower_bound(VarId{static_cast<std::uint32_t>(j)});
      hi_[j] = model_.upper_bound(VarId{static_cast<std::uint32_t>(j)});
    }
    for (std::size_t i = 0; i < m_; ++i) {
      lo_[n_ + i] = log_lo_[i];
      hi_[n_ + i] = log_hi_[i];
    }
  }

  VarStatus initial_status(std::size_t j) const {
    if (lo_[j] > -kInf) return VarStatus::kAtLower;
    if (hi_[j] < kInf) return VarStatus::kAtUpper;
    return VarStatus::kNonbasicFree;
  }

  void init_cold() {
    art_row_.clear();
    art_sign_.clear();
    setup_bounds(n_ + m_);
    vstat_.assign(n_ + m_, VarStatus::kAtLower);
    for (std::size_t j = 0; j < n_; ++j) vstat_[j] = initial_status(j);

    // Row residuals with every structural resting on its start bound decide
    // which rows need an artificial.
    std::vector<double> resid = b_;
    for (std::size_t j = 0; j < n_; ++j) {
      const double x = nonbasic_value(j);
      if (x == 0.0) continue;
      for (std::int32_t k = col_start_[j]; k < col_start_[j + 1]; ++k) {
        resid[row_idx_[k]] -= a_val_[k] * x;
      }
    }
    basis_.assign(m_, 0);
    xb_.assign(m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      const double r = resid[i];
      if (r >= log_lo_[i] && r <= log_hi_[i]) {
        basis_[i] = static_cast<std::int32_t>(n_ + i);
        xb_[i] = r;
      } else {
        // Logical rests on its nearest bound; a signed artificial absorbs
        // the remaining (positive) residual.
        const double clamped = std::clamp(r, log_lo_[i], log_hi_[i]);
        vstat_[n_ + i] = clamped == log_lo_[i] ? VarStatus::kAtLower : VarStatus::kAtUpper;
        art_row_.push_back(static_cast<std::int32_t>(i));
        art_sign_.push_back(r - clamped > 0 ? 1.0 : -1.0);
        basis_[i] = static_cast<std::int32_t>(n_ + m_ + art_row_.size() - 1);
        xb_[i] = std::abs(r - clamped);
      }
    }
    art_count_ = art_row_.size();
    ntot_ = n_ + m_ + art_count_;
    setup_bounds(ntot_);
    vstat_.resize(ntot_, VarStatus::kAtLower);
    basic_pos_.assign(ntot_, -1);
    for (std::size_t pos = 0; pos < m_; ++pos) {
      basic_pos_[basis_[pos]] = static_cast<std::int32_t>(pos);
      vstat_[basis_[pos]] = VarStatus::kBasic;
    }
    etas_.clear();
    const bool ok = refactorize();
    SDM_CHECK_MSG(ok, "cold-start basis must factorize (it is diagonal)");
  }

  bool try_warm_start() {
    const Basis* ws = opt_.warm_start;
    if (ws == nullptr) return false;
    if (ws->structural.size() != n_ || ws->logical.size() != m_) return false;
    art_row_.clear();
    art_sign_.clear();
    art_count_ = 0;
    ntot_ = n_ + m_;
    setup_bounds(ntot_);
    vstat_.assign(ntot_, VarStatus::kAtLower);
    std::vector<std::int32_t> basics;
    for (std::size_t j = 0; j < ntot_; ++j) {
      const VarStatus st = j < n_ ? ws->structural[j] : ws->logical[j - n_];
      vstat_[j] = st;
      if (st == VarStatus::kBasic) {
        basics.push_back(static_cast<std::int32_t>(j));
      } else if (st == VarStatus::kAtLower && lo_[j] <= -kInf) {
        return false;  // shape drifted: a free variable pinned to -inf
      } else if (st == VarStatus::kAtUpper && hi_[j] >= kInf) {
        return false;
      }
    }
    if (basics.size() != m_) return false;
    basis_ = basics;  // ascending variable order = deterministic positions
    basic_pos_.assign(ntot_, -1);
    for (std::size_t pos = 0; pos < m_; ++pos) {
      basic_pos_[basis_[pos]] = static_cast<std::int32_t>(pos);
    }
    etas_.clear();
    if (!refactorize()) return false;
    compute_xb();
    // A changed RHS moves xB = B^-1(b - N x_N): some basics land outside
    // their bounds. That is the normal warm-start condition, not a reason
    // to reject — collect the violators for the repair phase.
    repair_.clear();
    for (std::size_t pos = 0; pos < m_; ++pos) {
      const std::size_t j = static_cast<std::size_t>(basis_[pos]);
      if (xb_[pos] < lo_[j] - kFeasTol || xb_[pos] > hi_[j] + kFeasTol) {
        repair_.push_back(j);
      } else {
        xb_[pos] = std::clamp(xb_[pos], lo_[j], hi_[j]);
      }
    }
    return true;
  }

  /// Feasibility repair for a warm basis whose xB drifted out of bounds.
  ///
  /// Each below-lower violator temporarily gets bounds (-inf, lo] and cost
  /// -1; each above-upper violator gets [hi, +inf) and cost +1 (everything
  /// else costs 0). The basis is feasible for these working bounds, so the
  /// ordinary bounded primal simplex applies; minimizing drives every
  /// violator toward its true bound and the ratio test parks it there. The
  /// objective is bounded below by -(sum of violated bounds), attained
  /// exactly when every violator reaches its bound, so at optimality either
  /// the repair succeeded or the basis is genuinely unusable and we return
  /// false to fall back to a cold start. Restoring bounds afterwards keeps
  /// every value identical (a violator parked nonbasic at a working bound
  /// sits on the matching true bound; only its status label flips).
  bool repair_warm_basis(std::size_t& pivots) {
    cost_.assign(ntot_, 0.0);
    std::vector<std::pair<double, double>> saved(repair_.size());
    std::vector<bool> below(repair_.size());
    for (std::size_t k = 0; k < repair_.size(); ++k) {
      const std::size_t j = repair_[k];
      saved[k] = {lo_[j], hi_[j]};
      below[k] = xb_[basic_pos_[j]] < lo_[j];
      if (below[k]) {
        hi_[j] = lo_[j];
        lo_[j] = -kInf;
        cost_[j] = -1.0;
      } else {
        lo_[j] = hi_[j];
        hi_[j] = kInf;
        cost_[j] = 1.0;
      }
    }
    const std::size_t limit =
        opt_.max_iterations != 0 ? opt_.max_iterations : 50 * (m_ + ntot_) + 10000;
    const SolveStatus st = iterate(limit, pivots, /*phase1=*/true);

    bool ok = st == SolveStatus::kOptimal;
    for (std::size_t k = 0; k < repair_.size(); ++k) {
      const std::size_t j = repair_[k];
      lo_[j] = saved[k].first;
      hi_[j] = saved[k].second;
      if (vstat_[j] == VarStatus::kBasic) {
        const std::int32_t pos = basic_pos_[j];
        if (xb_[pos] < lo_[j] - kFeasTol || xb_[pos] > hi_[j] + kFeasTol) {
          ok = false;
        } else {
          xb_[pos] = std::clamp(xb_[pos], lo_[j], hi_[j]);
        }
      } else if (below[k]) {
        // Left the basis parked at the working upper bound == true lower.
        vstat_[j] = VarStatus::kAtLower;
      } else {
        vstat_[j] = VarStatus::kAtUpper;
      }
    }
    return ok;
  }

  bool refactorize() {
    std::vector<std::int32_t> order(m_);
    for (std::size_t pos = 0; pos < m_; ++pos) order[pos] = static_cast<std::int32_t>(pos);
    // Fill reduction: eliminate sparse columns first (simplex bases are
    // near-triangular; unit logical columns cost nothing).
    std::stable_sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
      return col_nnz(static_cast<std::size_t>(basis_[a])) <
             col_nnz(static_cast<std::size_t>(basis_[b]));
    });
    const bool ok = lu_.factorize(
        m_, [&](std::int32_t pos, auto& out) { gather_col(pos, out); }, order);
    if (ok) etas_.clear();
    return ok;
  }

  /// xB = B^-1 (b - N x_N): exact recomputation after each refactorization.
  void compute_xb() {
    std::vector<std::pair<std::int32_t, double>> rhs;
    std::vector<double> dense(m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) dense[i] = b_[i];
    for (std::size_t j = 0; j < ntot_; ++j) {
      if (vstat_[j] == VarStatus::kBasic) continue;
      const double x = nonbasic_value(j);
      if (x == 0.0) continue;
      scratch_col_.clear();
      append_col(j, scratch_col_);
      for (const auto& [r, v] : scratch_col_) dense[r] -= v * x;
    }
    rhs.clear();
    for (std::size_t i = 0; i < m_; ++i) {
      if (dense[i] != 0.0) rhs.emplace_back(static_cast<std::int32_t>(i), dense[i]);
    }
    lu_.ftran(rhs, xb_);
  }

  void ftran_col(std::size_t j, std::vector<double>& w) {
    scratch_col_.clear();
    append_col(j, scratch_col_);
    lu_.ftran(scratch_col_, w);
    for (const Eta& e : etas_) {
      const double xp = w[e.pivot] / e.pivot_val;
      if (xp != 0.0) {
        for (const auto& [i, v] : e.off) w[i] -= v * xp;
      }
      w[e.pivot] = xp;
    }
  }

  void btran_costs(std::vector<double>& y) {
    cb_.assign(m_, 0.0);
    for (std::size_t pos = 0; pos < m_; ++pos) cb_[pos] = cost_[basis_[pos]];
    for (std::size_t e = etas_.size(); e-- > 0;) {
      const Eta& eta = etas_[e];
      double acc = cb_[eta.pivot];
      for (const auto& [i, v] : eta.off) acc -= v * cb_[i];
      cb_[eta.pivot] = acc / eta.pivot_val;
    }
    lu_.btran(cb_, y);
  }

  double reduced_cost(std::size_t j, const std::vector<double>& y) const {
    double d = cost_[j];
    if (j < n_) {
      for (std::int32_t k = col_start_[j]; k < col_start_[j + 1]; ++k) {
        d -= a_val_[k] * y[row_idx_[k]];
      }
    } else if (j < n_ + m_) {
      d -= y[j - n_];
    } else {
      d -= art_sign_[j - n_ - m_] * y[art_row_[j - n_ - m_]];
    }
    return d;
  }

  /// +1: increase from lower / free descent; -1: decrease from upper.
  bool eligible(std::size_t j, double d, int& dir) const {
    if (vstat_[j] == VarStatus::kBasic) return false;
    if (lo_[j] == hi_[j]) return false;  // fixed: never price
    const double tol = opt_.tolerance;
    switch (vstat_[j]) {
      case VarStatus::kAtLower:
        if (d < -tol) return dir = 1, true;
        return false;
      case VarStatus::kAtUpper:
        if (d > tol) return dir = -1, true;
        return false;
      case VarStatus::kNonbasicFree:
        if (d < -tol) return dir = 1, true;
        if (d > tol) return dir = -1, true;
        return false;
      case VarStatus::kBasic: break;
    }
    return false;
  }

  /// Dantzig pricing over fixed sections of the variable index space. The
  /// cursor sticks to the section that last produced a pivot, so wide
  /// models only scan ~1/16 of the columns per iteration; Bland mode scans
  /// everything for the smallest eligible index.
  bool price(const std::vector<double>& y, bool bland, std::size_t& enter, int& dir) {
    if (bland) {
      for (std::size_t j = 0; j < ntot_; ++j) {
        int dj_dir = 0;
        const double d = vstat_[j] == VarStatus::kBasic ? 0.0 : reduced_cost(j, y);
        if (eligible(j, d, dj_dir)) {
          enter = j;
          dir = dj_dir;
          return true;
        }
      }
      return false;
    }
    const std::size_t nsec = ntot_ > 4096 ? 16 : 1;
    const std::size_t sec_size = (ntot_ + nsec - 1) / nsec;
    for (std::size_t scan = 0; scan < nsec; ++scan) {
      const std::size_t sec = (price_cursor_ + scan) % nsec;
      const std::size_t begin = sec * sec_size;
      const std::size_t end = std::min(ntot_, begin + sec_size);
      double best = 0.0;
      std::size_t best_j = ntot_;
      int best_dir = 0;
      for (std::size_t j = begin; j < end; ++j) {
        if (vstat_[j] == VarStatus::kBasic) continue;
        int dj_dir = 0;
        const double d = reduced_cost(j, y);
        if (!eligible(j, d, dj_dir)) continue;
        const double score = std::abs(d);
        if (score > best) {
          best = score;
          best_j = j;
          best_dir = dj_dir;
        }
      }
      if (best_j < ntot_) {
        price_cursor_ = sec;
        enter = best_j;
        dir = best_dir;
        return true;
      }
    }
    return false;
  }

  SolveStatus iterate(std::size_t limit, std::size_t& pivots, bool phase1) {
    std::size_t degenerate_run = 0;
    for (std::size_t iter = 0; iter < limit; ++iter) {
      const bool bland = degenerate_run >= opt_.degenerate_switch;
      btran_costs(y_);
      std::size_t enter = 0;
      int dir = 0;
      if (!price(y_, bland, enter, dir)) return SolveStatus::kOptimal;
      ftran_col(enter, w_);

      // Bounded ratio test: entering moves by t >= 0 in `dir`; each basic
      // position pos shifts by -dir*w[pos]*t until it hits a bound; the
      // entering variable itself may flip to its opposite bound first.
      double best_t = hi_[enter] - lo_[enter];  // inf for free/one-sided vars
      std::int32_t leave = -1;
      bool leave_to_upper = false;
      for (std::size_t pos = 0; pos < m_; ++pos) {
        const double alpha = dir * w_[pos];
        if (std::abs(alpha) <= kPivotTol) continue;
        const std::size_t bj = static_cast<std::size_t>(basis_[pos]);
        double t;
        bool to_upper;
        if (alpha > 0) {
          if (lo_[bj] <= -kInf) continue;
          t = (xb_[pos] - lo_[bj]) / alpha;
          to_upper = false;
        } else {
          if (hi_[bj] >= kInf) continue;
          t = (hi_[bj] - xb_[pos]) / -alpha;
          to_upper = true;
        }
        if (t < 0.0) t = 0.0;  // roundoff: basic slightly beyond its bound
        if (t < best_t - kPivotTol ||
            (t < best_t + kPivotTol && leave >= 0 && basis_[pos] < basis_[leave])) {
          best_t = t;
          leave = static_cast<std::int32_t>(pos);
          leave_to_upper = to_upper;
        }
      }
      if (leave < 0 && best_t >= kInf) {
        return phase1 ? SolveStatus::kInfeasible : SolveStatus::kUnbounded;
      }

      const double t = best_t;
      if (leave < 0) {
        // Bound flip: no basis change, no eta.
        for (std::size_t pos = 0; pos < m_; ++pos) {
          if (w_[pos] != 0.0) xb_[pos] -= dir * w_[pos] * t;
        }
        vstat_[enter] =
            vstat_[enter] == VarStatus::kAtLower ? VarStatus::kAtUpper : VarStatus::kAtLower;
        ++pivots;
        ++total_pivots_;
        degenerate_run = 0;  // flips always traverse the full bound range
        continue;
      }

      // Unstable eta pivot: fold the eta file into a fresh LU and redo the
      // iteration from exact data.
      if (std::abs(w_[leave]) < kEtaPivotTol && !etas_.empty()) {
        if (!refactorize()) return SolveStatus::kIterationLimit;
        compute_xb();
        continue;
      }

      for (std::size_t pos = 0; pos < m_; ++pos) {
        if (w_[pos] != 0.0) xb_[pos] -= dir * w_[pos] * t;
      }
      const std::size_t lv = static_cast<std::size_t>(basis_[leave]);
      vstat_[lv] = leave_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
      if (lo_[lv] == hi_[lv]) vstat_[lv] = VarStatus::kAtLower;
      basic_pos_[lv] = -1;

      double x_enter = 0.0;
      switch (vstat_[enter]) {
        case VarStatus::kAtLower: x_enter = lo_[enter] + t; break;
        case VarStatus::kAtUpper: x_enter = hi_[enter] - t; break;
        case VarStatus::kNonbasicFree: x_enter = dir * t; break;
        case VarStatus::kBasic: break;
      }
      vstat_[enter] = VarStatus::kBasic;
      basis_[leave] = static_cast<std::int32_t>(enter);
      basic_pos_[enter] = leave;
      xb_[leave] = x_enter;

      Eta eta;
      eta.pivot = leave;
      eta.pivot_val = w_[leave];
      for (std::size_t pos = 0; pos < m_; ++pos) {
        // Drop eta noise below 1e-13: it cannot move a pivot decision, and
        // the periodic refactorization erases its tiny residual anyway.
        if (static_cast<std::int32_t>(pos) != leave && std::abs(w_[pos]) > 1e-13) {
          eta.off.emplace_back(static_cast<std::int32_t>(pos), w_[pos]);
        }
      }
      etas_.push_back(std::move(eta));
      ++pivots;
      ++total_pivots_;
      degenerate_run = t <= kPivotTol ? degenerate_run + 1 : 0;

      if (etas_.size() >= std::max<std::size_t>(1, opt_.refactor_interval)) {
        if (!refactorize()) return SolveStatus::kIterationLimit;
        compute_xb();
      }
    }
    return SolveStatus::kIterationLimit;
  }

  void extract(Solution& sol) {
    sol.values.assign(n_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) {
      double x = vstat_[j] == VarStatus::kBasic
                     ? xb_[basic_pos_[j]]
                     : nonbasic_value(j);
      // Clamp eta-file roundoff back onto the box; anything larger is a
      // genuine violation check_feasible should see.
      if (x < lo_[j] && x > lo_[j] - kFeasTol) x = lo_[j];
      if (x > hi_[j] && x < hi_[j] + kFeasTol) x = hi_[j];
      sol.values[j] = x;
    }
    double obj = 0.0;
    for (std::size_t j = 0; j < n_; ++j) obj += model_.objective()[j] * sol.values[j];
    sol.objective = obj;
    sol.pivots = total_pivots_;
    sol.basis.structural.assign(n_, VarStatus::kAtLower);
    sol.basis.logical.assign(m_, VarStatus::kAtLower);
    for (std::size_t j = 0; j < n_; ++j) sol.basis.structural[j] = vstat_[j];
    for (std::size_t i = 0; i < m_; ++i) sol.basis.logical[i] = vstat_[n_ + i];
    // A redundant row can leave its artificial basic at zero through the
    // optimum. The artificial's column is ±e_r — exactly the row's logical
    // column up to sign — so exporting the logical as basic instead yields
    // an equivalent, nonsingular, full-rank basis (the logical takes the
    // artificial's value, 0, which every logical's bounds admit). Without
    // this the exported basis has < m basics and every warm start of a
    // same-shaped model would silently fall back to cold.
    for (std::size_t pos = 0; pos < m_; ++pos) {
      const std::size_t j = static_cast<std::size_t>(basis_[pos]);
      if (j >= n_ + m_) {
        sol.basis.logical[static_cast<std::size_t>(art_row_[j - n_ - m_])] = VarStatus::kBasic;
      }
    }
  }

  const LpModel& model_;
  const SimplexOptions& opt_;
  std::size_t n_ = 0, m_ = 0, ntot_ = 0, art_count_ = 0;

  // CSC structural matrix + row metadata.
  std::vector<std::int32_t> col_start_;
  std::vector<std::int32_t> row_idx_;
  std::vector<double> a_val_;
  std::vector<double> b_;
  std::vector<double> log_lo_, log_hi_;
  std::vector<std::int32_t> art_row_;
  std::vector<double> art_sign_;

  // Bounds/costs over the unified index space.
  std::vector<double> lo_, hi_, cost_;
  std::vector<VarStatus> vstat_;

  // Basis state.
  std::vector<std::int32_t> basis_;      // position -> variable
  std::vector<std::int32_t> basic_pos_;  // variable -> position (-1 nonbasic)
  std::vector<double> xb_;
  std::vector<std::size_t> repair_;  // warm-start basics outside their bounds
  LuFactors lu_;
  std::vector<Eta> etas_;
  std::size_t price_cursor_ = 0;
  std::size_t total_pivots_ = 0;

  // Scratch.
  std::vector<double> y_, w_, cb_;
  std::vector<std::pair<std::int32_t, double>> scratch_col_;
};

}  // namespace

Solution solve_sparse(const LpModel& model, const SimplexOptions& options) {
  SparseSimplex solver(model, options);
  return solver.run();
}

}  // namespace sdmbox::lp
