// Linear-program model builder.
//
// The controller's load-balancing optimizations (Eq. (1) and Eq. (2) of the
// paper) are built as LpModel instances and handed to the simplex solver.
// Conventions: variables default to non-negative reals, the objective is
// MINIMIZED, and constraints are sparse rows with a relation and rhs.
// Simple bounds (set_bounds) are handled implicitly by the sparse revised
// simplex — no explicit constraint rows; the dense oracle engine only
// accepts models with the default [0, +inf) bounds.
#pragma once

#include <limits>

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace sdmbox::lp {

struct VarId {
  std::uint32_t v = kInvalid;
  static constexpr std::uint32_t kInvalid = ~std::uint32_t{0};
  constexpr bool valid() const noexcept { return v != kInvalid; }
  friend constexpr auto operator<=>(VarId, VarId) noexcept = default;
};

enum class Relation : std::uint8_t { kLessEqual, kEqual, kGreaterEqual };

const char* to_string(Relation r) noexcept;

/// One sparse term: coefficient * variable.
struct Term {
  VarId var;
  double coeff;
};

struct Constraint {
  std::vector<Term> terms;
  Relation relation = Relation::kEqual;
  double rhs = 0;
  std::string name;
};

class LpModel {
public:
  /// Add a non-negative variable with the given objective coefficient.
  VarId add_variable(std::string name, double objective_coeff = 0.0);

  /// Replace a variable's objective coefficient (used for lexicographic
  /// re-solves: fix the primary optimum with a constraint, swap objectives,
  /// solve again).
  void set_objective_coeff(VarId v, double coeff);

  /// Add a constraint; duplicate variables in `terms` are summed.
  void add_constraint(std::vector<Term> terms, Relation relation, double rhs,
                      std::string name = {});

  /// Replace a variable's simple bounds. `lo` may be -inf (free below), `hi`
  /// may be +inf; lo == hi fixes the variable. Defaults are [0, +inf).
  void set_bounds(VarId v, double lo, double hi);

  double lower_bound(VarId v) const {
    SDM_CHECK(v.v < lower_.size());
    return lower_[v.v];
  }
  double upper_bound(VarId v) const {
    SDM_CHECK(v.v < upper_.size());
    return upper_[v.v];
  }
  /// True when every variable still has the default [0, +inf) bounds (the
  /// only shape the dense oracle engine understands).
  bool has_default_bounds() const noexcept;

  std::size_t variable_count() const noexcept { return var_names_.size(); }
  std::size_t constraint_count() const noexcept { return constraints_.size(); }

  const std::string& variable_name(VarId v) const {
    SDM_CHECK(v.v < var_names_.size());
    return var_names_[v.v];
  }
  double objective_coeff(VarId v) const {
    SDM_CHECK(v.v < objective_.size());
    return objective_[v.v];
  }
  const std::vector<Constraint>& constraints() const noexcept { return constraints_; }
  const std::vector<double>& objective() const noexcept { return objective_; }

  /// Total nonzero coefficients across all constraints (model-size metric for
  /// the Eq.(1)-vs-Eq.(2) ablation).
  std::size_t nonzero_count() const noexcept;

private:
  std::vector<std::string> var_names_;
  std::vector<double> objective_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<Constraint> constraints_;
};

}  // namespace sdmbox::lp
