#include "lp/model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sdmbox::lp {

const char* to_string(Relation r) noexcept {
  switch (r) {
    case Relation::kLessEqual: return "<=";
    case Relation::kEqual: return "=";
    case Relation::kGreaterEqual: return ">=";
  }
  return "?";
}

VarId LpModel::add_variable(std::string name, double objective_coeff) {
  SDM_CHECK_MSG(std::isfinite(objective_coeff), "objective coefficient must be finite");
  var_names_.push_back(std::move(name));
  objective_.push_back(objective_coeff);
  lower_.push_back(0.0);
  upper_.push_back(std::numeric_limits<double>::infinity());
  return VarId{static_cast<std::uint32_t>(var_names_.size() - 1)};
}

void LpModel::set_bounds(VarId v, double lo, double hi) {
  SDM_CHECK(v.v < lower_.size());
  SDM_CHECK_MSG(!std::isnan(lo) && !std::isnan(hi), "bounds must not be NaN");
  SDM_CHECK_MSG(lo < std::numeric_limits<double>::infinity(), "lower bound must not be +inf");
  SDM_CHECK_MSG(hi > -std::numeric_limits<double>::infinity(), "upper bound must not be -inf");
  SDM_CHECK_MSG(lo <= hi, "lower bound must not exceed upper bound");
  lower_[v.v] = lo;
  upper_[v.v] = hi;
}

bool LpModel::has_default_bounds() const noexcept {
  for (std::size_t j = 0; j < lower_.size(); ++j) {
    if (lower_[j] != 0.0 || upper_[j] != std::numeric_limits<double>::infinity()) return false;
  }
  return true;
}

void LpModel::set_objective_coeff(VarId v, double coeff) {
  SDM_CHECK(v.v < objective_.size());
  SDM_CHECK_MSG(std::isfinite(coeff), "objective coefficient must be finite");
  objective_[v.v] = coeff;
}

void LpModel::add_constraint(std::vector<Term> terms, Relation relation, double rhs,
                             std::string name) {
  SDM_CHECK_MSG(std::isfinite(rhs), "constraint rhs must be finite");
  // Merge duplicate variables so the solver sees each column once per row.
  std::sort(terms.begin(), terms.end(), [](const Term& a, const Term& b) { return a.var < b.var; });
  std::vector<Term> merged;
  merged.reserve(terms.size());
  for (const Term& t : terms) {
    SDM_CHECK_MSG(t.var.v < var_names_.size(), "constraint references unknown variable");
    SDM_CHECK_MSG(std::isfinite(t.coeff), "constraint coefficient must be finite");
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coeff += t.coeff;
    } else {
      merged.push_back(t);
    }
  }
  std::erase_if(merged, [](const Term& t) { return t.coeff == 0.0; });
  constraints_.push_back(Constraint{std::move(merged), relation, rhs, std::move(name)});
}

std::size_t LpModel::nonzero_count() const noexcept {
  std::size_t n = 0;
  for (const Constraint& c : constraints_) n += c.terms.size();
  return n;
}

}  // namespace sdmbox::lp
