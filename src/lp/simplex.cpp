#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sdmbox::lp {

const char* to_string(SolveStatus s) noexcept {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "?";
}

const char* to_string(SimplexEngine e) noexcept {
  switch (e) {
    case SimplexEngine::kSparse: return "sparse";
    case SimplexEngine::kDense: return "dense";
  }
  return "?";
}

namespace {

/// Dense tableau with an explicit basis. Column layout:
///   [0, n)            structural variables
///   [n, n + s)        slack / surplus variables
///   [n + s, n + s + a) artificial variables
/// plus the rhs held separately. The objective row holds reduced costs.
class Tableau {
public:
  Tableau(const LpModel& model, double tol) : tol_(tol), n_(model.variable_count()) {
    const auto& constraints = model.constraints();
    m_ = constraints.size();

    // Count slack and artificial columns.
    std::size_t slacks = 0, artificials = 0;
    for (const Constraint& c : constraints) {
      const bool flip = c.rhs < 0;  // normalize to rhs >= 0
      Relation rel = c.relation;
      if (flip && rel != Relation::kEqual) {
        rel = rel == Relation::kLessEqual ? Relation::kGreaterEqual : Relation::kLessEqual;
      }
      if (rel != Relation::kEqual) ++slacks;
      if (rel != Relation::kLessEqual) ++artificials;
    }
    s_ = slacks;
    a_ = artificials;
    cols_ = n_ + s_ + a_;
    rows_.assign(m_, std::vector<double>(cols_, 0.0));
    rhs_.assign(m_, 0.0);
    basis_.assign(m_, 0);
    art_start_ = n_ + s_;

    std::size_t slack_at = n_, art_at = n_ + s_;
    for (std::size_t r = 0; r < m_; ++r) {
      const Constraint& c = constraints[r];
      const double sign = c.rhs < 0 ? -1.0 : 1.0;
      Relation rel = c.relation;
      if (sign < 0 && rel != Relation::kEqual) {
        rel = rel == Relation::kLessEqual ? Relation::kGreaterEqual : Relation::kLessEqual;
      }
      for (const Term& t : c.terms) rows_[r][t.var.v] = sign * t.coeff;
      rhs_[r] = sign * c.rhs;
      if (rel == Relation::kLessEqual) {
        rows_[r][slack_at] = 1.0;
        basis_[r] = slack_at++;
      } else if (rel == Relation::kGreaterEqual) {
        rows_[r][slack_at] = -1.0;
        ++slack_at;
        rows_[r][art_at] = 1.0;
        basis_[r] = art_at++;
      } else {
        rows_[r][art_at] = 1.0;
        basis_[r] = art_at++;
      }
    }
  }

  /// Phase 1: minimize the sum of artificial variables.
  SolveStatus phase1(const SimplexOptions& opt, std::size_t& pivots) {
    if (a_ == 0) return SolveStatus::kOptimal;
    obj_.assign(cols_, 0.0);
    obj_value_ = 0.0;
    for (std::size_t j = art_start_; j < cols_; ++j) obj_[j] = 1.0;
    // Make reduced costs of the basic artificials zero.
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] >= art_start_) {
        for (std::size_t j = 0; j < cols_; ++j) obj_[j] -= rows_[r][j];
        obj_value_ -= rhs_[r];
      }
    }
    const SolveStatus st = iterate(opt, pivots, /*forbid_artificials=*/false);
    if (st != SolveStatus::kOptimal) return st;
    if (-obj_value_ > 1e-7) return SolveStatus::kInfeasible;  // residual artificial mass

    // Drive any remaining basic artificials out (degenerate rows).
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] < art_start_) continue;
      std::size_t enter = cols_;
      for (std::size_t j = 0; j < art_start_; ++j) {
        if (std::abs(rows_[r][j]) > tol_) {
          enter = j;
          break;
        }
      }
      if (enter < cols_) {
        pivot(r, enter);
        ++pivots;
      }
      // else: the row is all-zero over structural+slack columns — redundant
      // constraint; the artificial stays basic at value 0, which is harmless
      // as long as phase 2 never lets it re-enter (we forbid those columns).
    }
    return SolveStatus::kOptimal;
  }

  /// Phase 2: minimize the real objective.
  SolveStatus phase2(const LpModel& model, const SimplexOptions& opt, std::size_t& pivots) {
    obj_.assign(cols_, 0.0);
    obj_value_ = 0.0;
    for (std::size_t j = 0; j < n_; ++j) obj_[j] = model.objective()[j];
    for (std::size_t r = 0; r < m_; ++r) {
      const std::size_t b = basis_[r];
      const double cb = b < n_ ? model.objective()[b] : 0.0;
      if (cb == 0.0) continue;
      for (std::size_t j = 0; j < cols_; ++j) obj_[j] -= cb * rows_[r][j];
      obj_value_ -= cb * rhs_[r];
    }
    return iterate(opt, pivots, /*forbid_artificials=*/true);
  }

  double objective_value() const noexcept { return -obj_value_; }

  std::vector<double> extract(std::size_t var_count) const {
    std::vector<double> x(var_count, 0.0);
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] < var_count) x[basis_[r]] = rhs_[r];
    }
    return x;
  }

private:
  SolveStatus iterate(const SimplexOptions& opt, std::size_t& pivots, bool forbid_artificials) {
    const std::size_t limit =
        opt.max_iterations != 0 ? opt.max_iterations : 50 * (m_ + cols_) + 10000;
    const std::size_t scan_end = forbid_artificials ? art_start_ : cols_;
    std::size_t degenerate_run = 0;
    for (std::size_t iter = 0; iter < limit; ++iter) {
      const bool bland = degenerate_run >= opt.degenerate_switch;
      // Pricing: entering column with negative reduced cost.
      std::size_t enter = cols_;
      double best = -tol_;
      for (std::size_t j = 0; j < scan_end; ++j) {
        const double rc = obj_[j];
        if (bland) {
          if (rc < -tol_) {
            enter = j;
            break;
          }
        } else if (rc < best) {
          best = rc;
          enter = j;
        }
      }
      if (enter == cols_) return SolveStatus::kOptimal;

      // Ratio test: leaving row minimizing rhs/col over positive entries;
      // ties broken by smallest basis index (lexicographic-ish, helps
      // degeneracy and determinism).
      std::size_t leave = m_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < m_; ++r) {
        const double a = rows_[r][enter];
        if (a > tol_) {
          const double ratio = rhs_[r] / a;
          if (ratio < best_ratio - tol_ ||
              (ratio < best_ratio + tol_ && leave < m_ && basis_[r] < basis_[leave])) {
            best_ratio = ratio;
            leave = r;
          }
        }
      }
      if (leave == m_) return SolveStatus::kUnbounded;
      degenerate_run = best_ratio <= tol_ ? degenerate_run + 1 : 0;
      pivot(leave, enter);
      ++pivots;
    }
    return SolveStatus::kIterationLimit;
  }

  void pivot(std::size_t prow, std::size_t pcol) {
    std::vector<double>& pr = rows_[prow];
    const double pv = pr[pcol];
    SDM_CHECK_MSG(std::abs(pv) > 1e-12, "pivot on (near-)zero element");
    const double inv = 1.0 / pv;
    for (double& v : pr) v *= inv;
    rhs_[prow] *= inv;
    pr[pcol] = 1.0;  // kill roundoff on the pivot element itself
    for (std::size_t r = 0; r < m_; ++r) {
      if (r == prow) continue;
      const double f = rows_[r][pcol];
      if (f == 0.0) continue;
      std::vector<double>& row = rows_[r];
      for (std::size_t j = 0; j < cols_; ++j) row[j] -= f * pr[j];
      row[pcol] = 0.0;
      rhs_[r] -= f * rhs_[prow];
      if (rhs_[r] < 0 && rhs_[r] > -1e-11) rhs_[r] = 0.0;  // clamp roundoff
    }
    const double fo = obj_[pcol];
    if (fo != 0.0) {
      for (std::size_t j = 0; j < cols_; ++j) obj_[j] -= fo * pr[j];
      obj_[pcol] = 0.0;
      obj_value_ -= fo * rhs_[prow];
    }
    basis_[prow] = pcol;
  }

  double tol_;
  std::size_t n_ = 0, m_ = 0, s_ = 0, a_ = 0, cols_ = 0, art_start_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<double> rhs_;
  std::vector<double> obj_;
  double obj_value_ = 0.0;  // negative of current objective
  std::vector<std::size_t> basis_;
};

}  // namespace

Solution solve(const LpModel& model, const SimplexOptions& options) {
  Solution sol;
  if (model.variable_count() == 0) {
    // Vacuous model: feasible iff every constraint holds with x = {}.
    sol.status = SolveStatus::kOptimal;
    for (const Constraint& c : model.constraints()) {
      const bool ok = c.relation == Relation::kLessEqual  ? 0.0 <= c.rhs + options.tolerance
                      : c.relation == Relation::kEqual    ? std::abs(c.rhs) <= options.tolerance
                                                          : 0.0 >= c.rhs - options.tolerance;
      if (!ok) sol.status = SolveStatus::kInfeasible;
    }
    return sol;
  }
  if (options.engine == SimplexEngine::kSparse) return solve_sparse(model, options);

  SDM_CHECK_MSG(model.has_default_bounds(),
                "dense oracle engine only supports default [0, +inf) bounds");
  Tableau tableau(model, options.tolerance);
  SolveStatus st = tableau.phase1(options, sol.pivots);
  if (st != SolveStatus::kOptimal) {
    sol.status = st;
    return sol;
  }
  st = tableau.phase2(model, options, sol.pivots);
  sol.status = st;
  if (st == SolveStatus::kOptimal) {
    sol.values = tableau.extract(model.variable_count());
    sol.objective = tableau.objective_value();
  }
  return sol;
}

std::string check_feasible(const LpModel& model, const std::vector<double>& values,
                           double tolerance) {
  if (values.size() != model.variable_count()) return "value vector size mismatch";
  for (std::size_t j = 0; j < values.size(); ++j) {
    const VarId v{static_cast<std::uint32_t>(j)};
    if (values[j] < model.lower_bound(v) - tolerance) {
      return "variable " + model.variable_name(v) +
             " below lower bound: " + std::to_string(values[j]);
    }
    if (values[j] > model.upper_bound(v) + tolerance) {
      return "variable " + model.variable_name(v) +
             " above upper bound: " + std::to_string(values[j]);
    }
  }
  for (const Constraint& c : model.constraints()) {
    double lhs = 0;
    for (const Term& t : c.terms) lhs += t.coeff * values[t.var.v];
    const double slack = lhs - c.rhs;
    const bool ok = c.relation == Relation::kLessEqual  ? slack <= tolerance
                    : c.relation == Relation::kEqual    ? std::abs(slack) <= tolerance
                                                        : slack >= -tolerance;
    if (!ok) {
      return "constraint " + (c.name.empty() ? std::string("<unnamed>") : c.name) + " violated: " +
             std::to_string(lhs) + " " + to_string(c.relation) + " " + std::to_string(c.rhs);
    }
  }
  return {};
}

}  // namespace sdmbox::lp
