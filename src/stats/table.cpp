#include "stats/table.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace sdmbox::stats {

void TextTable::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void TextTable::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths;
  const auto account = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  };
  account(header_);
  for (const auto& row : rows_) account(row);

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += "  ";
      // Right-align all but the first column (numbers read better).
      out += i == 0 ? util::pad_right(row[i], widths[i]) : util::pad_left(row[i], widths[i]);
    }
    out += "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) total += widths[i] + (i ? 2 : 0);
    out += std::string(total, '-') + "\n";
  }
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string TextTable::to_csv() const {
  std::string out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += ",";
      out += row[i];
    }
    out += "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

}  // namespace sdmbox::stats
