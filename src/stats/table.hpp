// Plain-text and CSV table rendering for the bench harnesses, which print
// the same rows/series the paper's tables and figures report.
#pragma once

#include <string>
#include <vector>

namespace sdmbox::stats {

class TextTable {
public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Render with column alignment and a separator under the header.
  std::string to_string() const;

  /// Render as CSV (header first if set).
  std::string to_csv() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sdmbox::stats
