#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sdmbox::stats {

void Histogram::add(double value) {
  SDM_CHECK_MSG(std::isfinite(value), "histogram samples must be finite");
  if (!samples_.empty() && value < samples_.back()) sorted_ = false;
  samples_.push_back(value);
  sum_ += value;
}

void Histogram::ensure_sorted() const {
  if (!sorted_) {
    auto& mutable_samples = const_cast<std::vector<double>&>(samples_);
    std::sort(mutable_samples.begin(), mutable_samples.end());
    sorted_ = true;
  }
}

double Histogram::min() const {
  SDM_CHECK(!samples_.empty());
  ensure_sorted();
  return samples_.front();
}

double Histogram::max() const {
  SDM_CHECK(!samples_.empty());
  ensure_sorted();
  return samples_.back();
}

double Histogram::mean() const {
  SDM_CHECK(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::quantile(double q) const {
  SDM_CHECK_MSG(!samples_.empty(),
                "quantile() on an empty histogram — add samples first, or use snapshot()");
  SDM_CHECK(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

HistogramSnapshot Histogram::snapshot(double qa, double qb, double qc) const {
  HistogramSnapshot s;
  s.quantiles = {qa, qb, qc};
  if (samples_.empty()) return s;
  s.count = samples_.size();
  s.sum = sum_;
  s.min = min();
  s.max = max();
  s.mean = mean();
  for (std::size_t i = 0; i < s.quantiles.size(); ++i) s.values[i] = quantile(s.quantiles[i]);
  return s;
}

}  // namespace sdmbox::stats
