// Reservoir-free exact histogram for bench-scale sample sets (delivery
// latencies, queue depths): stores samples, sorts lazily, answers mean and
// quantiles. Bench-scale means up to a few million doubles — fine to hold.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace sdmbox::stats {

/// Flat summary of a histogram at one instant — everything an exporter
/// needs, without a copy of the sample vector. All zeros when count == 0.
struct HistogramSnapshot {
  std::size_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  std::array<double, 3> quantiles{};  // the q arguments echoed back
  std::array<double, 3> values{};     // sample values at those quantiles
};

class Histogram {
public:
  void add(double value);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  /// Running sum of all samples (0 when empty).
  double sum() const noexcept { return sum_; }
  /// Quantile in [0, 1] by nearest-rank on the sorted samples; q=0.5 is the
  /// median. Requires at least one sample (snapshot() is the empty-safe way).
  double quantile(double q) const;

  /// Empty-safe summary at the three given quantiles.
  HistogramSnapshot snapshot(double qa = 0.5, double qb = 0.9, double qc = 0.99) const;

private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  double sum_ = 0;
  mutable bool sorted_ = true;
};

}  // namespace sdmbox::stats
