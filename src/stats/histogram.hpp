// Reservoir-free exact histogram for bench-scale sample sets (delivery
// latencies, queue depths): stores samples, sorts lazily, answers mean and
// quantiles. Bench-scale means up to a few million doubles — fine to hold.
#pragma once

#include <cstdint>
#include <vector>

namespace sdmbox::stats {

class Histogram {
public:
  void add(double value);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  /// Quantile in [0, 1] by nearest-rank on the sorted samples; q=0.5 is the
  /// median. Requires at least one sample.
  double quantile(double q) const;

private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace sdmbox::stats
