// Epoch time-series recorder: periodic snapshots of every registry value in
// simulated time, so a run's evolution ("what did detection latency look
// like over the link flap?") is a first-class export, not a one-off printf.
//
// The recorder is deliberately decoupled from the event engine: sample(now)
// takes one snapshot, and start() self-schedules through caller-provided
// closures — with a sim::Simulator that is simply
//
//   recorder.start([&](double d, auto fn) { sim.schedule_in(d, std::move(fn)); },
//                  [&] { return sim.now(); });
//
// which drives one snapshot per epoch on the simulator's own calendar (the
// first at the current time). Metrics registered after the first epoch are
// zero-padded on the left so every series stays aligned with epochs().
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace sdmbox::obs {

class EpochRecorder {
public:
  /// Snapshots `registry` every `period` (simulated seconds). The registry
  /// must outlive the recorder.
  EpochRecorder(const MetricsRegistry& registry, double period);

  /// Take one snapshot stamped `now`. Timestamps must be non-decreasing.
  void sample(double now);

  using ScheduleIn = std::function<void(double delay, std::function<void()> fn)>;
  using Clock = std::function<double()>;

  /// Sample immediately, then keep rescheduling every period() until stop().
  /// Idempotent while running.
  void start(ScheduleIn schedule, Clock clock);
  void stop() noexcept { running_ = false; }
  bool running() const noexcept { return running_; }

  double period() const noexcept { return period_; }
  const std::vector<double>& epochs() const noexcept { return epochs_; }
  std::size_t epoch_count() const noexcept { return epochs_.size(); }

  struct Series {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    std::vector<double> values;  // parallel to epochs()
  };

  /// Every recorded series, sorted by (name, labels), each padded to
  /// epochs().size() values.
  std::vector<Series> series() const;

  /// Direct series lookup for consumers that subscribe to recorded samples
  /// (e.g. the drift-triggered re-optimisation loop). The pointer stays
  /// valid across sample() calls but its values vector grows with them; a
  /// just-registered series may be shorter than epoch_count() until the
  /// next sample (see the left-padding note above).
  const Series* find(std::string_view name, const Labels& labels) const;

  /// All recorded series named `name` (one per label set), in deterministic
  /// label order.
  std::vector<const Series*> find_all(std::string_view name) const;

  /// Most recently sampled value of (name, labels); nullopt when the series
  /// is unknown or has no samples yet.
  std::optional<double> latest(std::string_view name, const Labels& labels) const;

private:
  void tick();

  const MetricsRegistry& registry_;
  double period_;
  std::vector<double> epochs_;
  // Keyed like the registry (name + '\0' + labels) so iteration stays in the
  // same deterministic order.
  std::map<std::string, Series> series_;
  bool running_ = false;
  ScheduleIn schedule_;
  Clock clock_;
};

}  // namespace sdmbox::obs
