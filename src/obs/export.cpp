#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>

#include "net/topology.hpp"
#include "util/log.hpp"

namespace sdmbox::obs {

// Deterministic number rendering: integral values print as integers (the
// common case for counters), everything else via %.17g, which round-trips
// doubles exactly and never depends on locale.
std::string json_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  if (std::isnan(v)) return "null";  // JSON has no NaN; exporters agree on null
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_labels_json(std::string& out, const Labels& labels) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels.items()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(k);
    out += "\":\"";
    out += json_escape(v);
    out += '"';
  }
  out += '}';
}

void append_histogram_json(std::string& out, const stats::HistogramSnapshot& h) {
  out += "{\"count\":";
  out += json_number(static_cast<double>(h.count));
  out += ",\"sum\":";
  out += json_number(h.sum);
  out += ",\"min\":";
  out += json_number(h.min);
  out += ",\"max\":";
  out += json_number(h.max);
  out += ",\"mean\":";
  out += json_number(h.mean);
  out += ",\"quantiles\":{";
  for (std::size_t i = 0; i < h.quantiles.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += json_number(h.quantiles[i]);
    out += "\":";
    out += json_number(h.values[i]);
  }
  out += "}}";
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::string to_json(const MetricsRegistry& registry, const EpochRecorder* series) {
  std::string out = "{\n  \"metrics\": [\n";
  const auto samples = registry.collect();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    out += "    {\"name\":\"";
    out += json_escape(s.name);
    out += "\",\"labels\":";
    append_labels_json(out, s.labels);
    out += ",\"kind\":\"";
    out += to_string(s.kind);
    out += "\",\"value\":";
    out += json_number(s.value);
    if (s.kind == MetricKind::kHistogram) {
      out += ",\"histogram\":";
      append_histogram_json(out, s.histogram);
    }
    out += '}';
    if (i + 1 < samples.size()) out += ',';
    out += '\n';
  }
  out += "  ]";
  if (series != nullptr) {
    out += ",\n  \"series\": {\n    \"period\": ";
    out += json_number(series->period());
    out += ",\n    \"epochs\": [";
    const auto& epochs = series->epochs();
    for (std::size_t i = 0; i < epochs.size(); ++i) {
      if (i) out += ',';
      out += json_number(epochs[i]);
    }
    out += "],\n    \"metrics\": [\n";
    const auto all = series->series();
    for (std::size_t i = 0; i < all.size(); ++i) {
      const auto& s = all[i];
      out += "      {\"name\":\"";
      out += json_escape(s.name);
      out += "\",\"labels\":";
      append_labels_json(out, s.labels);
      out += ",\"values\":[";
      for (std::size_t j = 0; j < s.values.size(); ++j) {
        if (j) out += ',';
        out += json_number(s.values[j]);
      }
      out += "]}";
      if (i + 1 < all.size()) out += ',';
      out += '\n';
    }
    out += "    ]\n  }";
  }
  out += "\n}\n";
  return out;
}

std::string to_prometheus(const MetricsRegistry& registry) {
  std::string out;
  std::string last_name;
  for (const MetricSample& s : registry.collect()) {
    if (s.name != last_name) {
      out += "# TYPE ";
      out += s.name;
      out += ' ';
      // Histograms export as Prometheus summaries (count/sum/quantile).
      out += s.kind == MetricKind::kHistogram ? "summary" : to_string(s.kind);
      out += '\n';
      last_name = s.name;
    }
    if (s.kind == MetricKind::kHistogram) {
      const auto& h = s.histogram;
      out += s.name + "_count" + s.labels.render() + ' ' +
             json_number(static_cast<double>(h.count)) + '\n';
      out += s.name + "_sum" + s.labels.render() + ' ' + json_number(h.sum) + '\n';
      for (std::size_t i = 0; i < h.quantiles.size(); ++i) {
        Labels with_q = s.labels;
        with_q.set("quantile", json_number(h.quantiles[i]));
        out += s.name + with_q.render() + ' ' + json_number(h.values[i]) + '\n';
      }
    } else {
      out += s.name + s.labels.render() + ' ' + json_number(s.value) + '\n';
    }
  }
  return out;
}

std::string to_csv(const EpochRecorder& recorder) {
  const auto all = recorder.series();
  std::string out = "epoch";
  for (const auto& s : all) {
    out += ',';
    // Quote the column name: label renderings contain commas.
    out += '"';
    for (char c : s.name + s.labels.render()) {
      if (c == '"') out += '"';  // CSV-style doubled quote
      out += c;
    }
    out += '"';
  }
  out += '\n';
  const auto& epochs = recorder.epochs();
  for (std::size_t row = 0; row < epochs.size(); ++row) {
    out += json_number(epochs[row]);
    for (const auto& s : all) {
      out += ',';
      out += json_number(s.values[row]);
    }
    out += '\n';
  }
  return out;
}

std::string trace_to_json(const PathTracer& tracer, const net::Topology* topo) {
  return trace_to_json(tracer.sink().records(), tracer.sampler().rate(),
                       tracer.sampler().seed(), tracer.sink().recorded(),
                       tracer.sink().overwritten(), topo);
}

std::string trace_to_json(const std::vector<TraceRecord>& records, double sample_rate,
                          std::uint64_t seed, std::uint64_t recorded, std::uint64_t overwritten,
                          const net::Topology* topo) {
  // Group by flow in first-traced order so the dump reads as per-flow paths.
  std::map<packet::FlowId, std::size_t> order;
  std::vector<std::pair<packet::FlowId, std::vector<const TraceRecord*>>> flows;
  for (const TraceRecord& r : records) {
    auto [it, inserted] = order.try_emplace(r.flow, flows.size());
    if (inserted) flows.emplace_back(r.flow, std::vector<const TraceRecord*>{});
    flows[it->second].second.push_back(&r);
  }

  std::string out = "{\n  \"sample_rate\": ";
  out += json_number(sample_rate);
  out += ",\n  \"seed\": ";
  out += json_number(static_cast<double>(seed));
  out += ",\n  \"recorded\": ";
  out += json_number(static_cast<double>(recorded));
  out += ",\n  \"overwritten\": ";
  out += json_number(static_cast<double>(overwritten));
  out += ",\n  \"flows\": [\n";
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto& [flow, hops] = flows[i];
    out += "    {\"flow\":\"";
    out += json_escape(flow.to_string());
    out += "\",\"hops\":[\n";
    for (std::size_t j = 0; j < hops.size(); ++j) {
      const TraceRecord& r = *hops[j];
      out += "      {\"at\":";
      out += json_number(r.at);
      out += ",\"node\":";
      out += json_number(static_cast<double>(r.node.v));
      if (topo != nullptr && r.node.v < topo->node_count()) {
        out += ",\"device\":\"";
        out += json_escape(topo->node(r.node).name);
        out += '"';
      }
      out += ",\"hop\":\"";
      out += to_string(r.hop);
      out += '"';
      if (r.detail != 0) {
        out += ",\"detail\":";
        out += json_number(static_cast<double>(r.detail));
      }
      if (r.seq != 0) {
        out += ",\"seq\":";
        out += json_number(static_cast<double>(r.seq));
      }
      out += '}';
      if (j + 1 < hops.size()) out += ',';
      out += '\n';
    }
    out += "    ]}";
    if (i + 1 < flows.size()) out += ',';
    out += '\n';
  }
  out += "  ]\n}\n";
  return out;
}

std::string spans_to_json(const SpanTracer& tracer) {
  const auto spans = tracer.spans();
  std::string out = "{\n  \"started\": ";
  out += json_number(static_cast<double>(tracer.started()));
  out += ",\n  \"dropped\": ";
  out += json_number(static_cast<double>(tracer.dropped()));
  out += ",\n  \"spans\": [\n";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    out += "    {\"id\":";
    out += json_number(static_cast<double>(s.id));
    out += ",\"parent\":";
    out += json_number(static_cast<double>(s.parent));
    out += ",\"trace\":";
    out += json_number(static_cast<double>(s.trace));
    out += ",\"name\":\"";
    out += json_escape(s.name);
    out += "\",\"device\":\"";
    out += json_escape(s.device);
    out += "\",\"subsystem\":\"";
    out += json_escape(s.subsystem);
    out += "\",\"start\":";
    out += json_number(s.start);
    out += ",\"end\":";
    // An un-ended span exports end:null, never a sentinel value.
    out += s.open() ? "null" : json_number(s.end);
    out += ",\"duration\":";
    out += s.open() ? "null" : json_number(s.duration());
    out += ",\"attrs\":{";
    for (std::size_t j = 0; j < s.attrs.size(); ++j) {
      if (j) out += ',';
      out += '"';
      out += json_escape(s.attrs[j].first);
      out += "\":";
      out += json_number(s.attrs[j].second);
    }
    out += "}}";
    if (i + 1 < spans.size()) out += ',';
    out += '\n';
  }
  out += "  ]\n}\n";
  return out;
}

std::string spans_to_csv(const SpanTracer& tracer) {
  std::string out = "id,parent,trace,name,device,subsystem,start,end,duration,attrs\n";
  for (const Span& s : tracer.spans()) {
    out += json_number(static_cast<double>(s.id));
    out += ',';
    out += json_number(static_cast<double>(s.parent));
    out += ',';
    out += json_number(static_cast<double>(s.trace));
    out += ',';
    out += s.name;  // span names are fixed identifiers, never need quoting
    out += ',';
    out += s.device;
    out += ',';
    out += s.subsystem;
    out += ',';
    out += json_number(s.start);
    out += ',';
    if (!s.open()) out += json_number(s.end);
    out += ',';
    if (!s.open()) out += json_number(s.duration());
    out += ",\"";
    for (std::size_t j = 0; j < s.attrs.size(); ++j) {
      if (j) out += ';';
      out += s.attrs[j].first;
      out += '=';
      out += json_number(s.attrs[j].second);
    }
    out += "\"\n";
  }
  return out;
}

std::string render_spans_for_path(const SpanTracer& tracer, const std::string& path) {
  if (ends_with(path, ".csv")) return spans_to_csv(tracer);
  return spans_to_json(tracer);
}

std::string render_for_path(const MetricsRegistry& registry, const EpochRecorder* series,
                            const std::string& path) {
  if (ends_with(path, ".csv")) {
    if (series != nullptr) return to_csv(*series);
    // No series recorded: fall through to a one-row CSV of current values.
    EpochRecorder once(registry, 1.0);
    once.sample(0.0);
    return to_csv(once);
  }
  if (ends_with(path, ".prom") || ends_with(path, ".txt")) return to_prometheus(registry);
  return to_json(registry, series);
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    SDM_LOG_WARN("obs", "cannot open " << path << " for writing");
    return false;
  }
  out << content;
  return static_cast<bool>(out);
}

}  // namespace sdmbox::obs
