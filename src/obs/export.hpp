// Exporters: the registry / recorder / tracer rendered as JSON, CSV, or
// Prometheus-style text. All outputs iterate the deterministic collection
// order and format numbers with a fixed printf recipe, so two runs with the
// same seed produce byte-identical dumps — the property the reproducibility
// tests pin.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace sdmbox::net {
class Topology;
}

namespace sdmbox::obs {

/// Full JSON document: {"metrics": [...]} plus, when `series` is given,
/// {"series": {"period", "epochs", "metrics"}}.
std::string to_json(const MetricsRegistry& registry, const EpochRecorder* series = nullptr);

/// Prometheus text exposition: `# TYPE` headers plus one sample line per
/// (name, labels); histograms render as summaries (count / sum / quantiles).
std::string to_prometheus(const MetricsRegistry& registry);

/// Wide CSV of the epoch series: header `epoch,<name{labels}>...`, one row
/// per recorded epoch.
std::string to_csv(const EpochRecorder& recorder);

/// Trace dump: records grouped per flow in first-traced order, each hop with
/// simulated time, node id, node name (when `topo` is given) and hop kind.
std::string trace_to_json(const PathTracer& tracer, const net::Topology* topo = nullptr);

/// Records-level overload for partitioned runs: the caller supplies an
/// already-merged record stream (see merge_trace_shards) plus the header
/// facts a single tracer would have carried. The single-tracer overload is
/// exactly this with the tracer's own sink/sampler, so serial output is
/// unchanged byte for byte.
std::string trace_to_json(const std::vector<TraceRecord>& records, double sample_rate,
                          std::uint64_t seed, std::uint64_t recorded, std::uint64_t overwritten,
                          const net::Topology* topo = nullptr);

/// Span dump: {"started", "dropped", "spans": [...]} with spans in id
/// (creation) order; each span carries ids, name, device/subsystem, trace
/// tree links, sim-time start/end/duration, and sorted numeric attrs.
std::string spans_to_json(const SpanTracer& tracer);

/// Flat CSV of the span table, one row per surviving span in id order:
/// id,parent,trace,name,device,subsystem,start,end,duration,attrs
/// (attrs as `k=v` pairs joined by `;` inside one quoted cell).
std::string spans_to_csv(const SpanTracer& tracer);

/// Render `tracer` in the format implied by `path`'s extension:
/// .csv -> CSV, anything else -> JSON.
std::string render_spans_for_path(const SpanTracer& tracer, const std::string& path);

/// Render `registry` (+ optional series) in the format implied by `path`'s
/// extension: .csv -> CSV, .prom/.txt -> Prometheus, anything else -> JSON.
std::string render_for_path(const MetricsRegistry& registry, const EpochRecorder* series,
                            const std::string& path);

/// The exporters' deterministic number recipe, for other modules emitting
/// JSON that must stay byte-identical across same-seed runs: integral values
/// print as integers, everything else via %.17g (exact double round-trip);
/// NaN renders as `null`, infinities as ±1e999.
std::string json_number(double v);

/// JSON string-body escaping matching the exporters (quotes, backslash,
/// control characters).
std::string json_escape(std::string_view s);

/// Write `content` to `path`; false (with a warning log) on I/O failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace sdmbox::obs
