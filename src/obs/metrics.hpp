// Unified metrics registry — the one tree every component reports into.
//
// Three instrument kinds (counter / gauge / histogram), each carrying a
// metric name plus a small label set (`device`, `subsystem`, `function` by
// convention). Two registration styles:
//
//  * owned instruments — counter()/gauge()/histogram() allocate storage in
//    the registry and hand back a stable reference; hot paths increment a
//    plain uint64 through it, no lookup, no branch;
//  * exposed views — expose_counter()/expose_gauge()/expose_histogram()
//    reference values that live INSIDE existing component counter structs
//    (FlowTableStats, ProxyCounters, HealthCounters, ...). The structs stay
//    the hot-path storage and keep their typed accessors; the registry reads
//    through the pointer/closure only at collection time. Components must
//    outlive every collect() call (registries are scoped to a run).
//
// Iteration order is deterministic: collect() returns samples sorted by
// (name, labels), so dumps from identical runs are byte-identical — the
// property every exporter and the epoch recorder inherit for free.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/histogram.hpp"

namespace sdmbox::obs {

/// An ordered label set (sorted by key, duplicate keys rejected).
class Labels {
public:
  Labels() = default;
  Labels(std::initializer_list<std::pair<std::string, std::string>> kv);

  /// Insert or overwrite one label; returns *this for chaining.
  Labels& set(std::string key, std::string value);

  const std::string* get(std::string_view key) const noexcept;
  const std::vector<std::pair<std::string, std::string>>& items() const noexcept {
    return items_;
  }
  bool empty() const noexcept { return items_.empty(); }

  /// Prometheus-style rendering: `{a="x",b="y"}`, empty string when empty.
  std::string render() const;

  friend bool operator==(const Labels&, const Labels&) noexcept = default;

private:
  std::vector<std::pair<std::string, std::string>> items_;  // sorted by key
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };
const char* to_string(MetricKind kind) noexcept;

/// Monotone event count. Plain storage so `++c.value` (or inc()) costs the
/// same as the ad-hoc struct fields it replaces.
struct Counter {
  std::uint64_t value = 0;
  void inc(std::uint64_t n = 1) noexcept { value += n; }
};

/// Point-in-time level.
struct Gauge {
  double value = 0;
  void set(double v) noexcept { value = v; }
  void add(double v) noexcept { value += v; }
};

/// One metric's value at collection time.
struct MetricSample {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0;                     // counter / gauge (histogram: count)
  stats::HistogramSnapshot histogram;   // kHistogram only
};

class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Owned instruments. Re-requesting the same (name, labels) returns the
  /// existing instrument (kind must match), so independent components can
  /// share a series.
  Counter& counter(std::string name, Labels labels = {});
  Gauge& gauge(std::string name, Labels labels = {});
  stats::Histogram& histogram(std::string name, Labels labels = {});

  /// Views over externally-owned values. The pointee / closure must stay
  /// valid for every subsequent collect(). Duplicate (name, labels)
  /// registration is a contract violation — it would hide one source.
  void expose_counter(std::string name, Labels labels, const std::uint64_t* value);
  void expose_gauge(std::string name, Labels labels, std::function<double()> fn);
  void expose_histogram(std::string name, Labels labels, const stats::Histogram* hist);

  /// Every metric's current value, sorted by (name, labels) — the stable
  /// order all exporters and the epoch recorder rely on.
  std::vector<MetricSample> collect() const;

  /// Scalar value of one metric (histograms report their count); nullopt
  /// when no such (name, labels) is registered.
  std::optional<double> value(std::string_view name, const Labels& labels = {}) const;

  /// Sum over every instrument named `name`, across all label sets (0 when
  /// none exist). The registry-level analogue of "total over devices".
  double total(std::string_view name) const;

  std::size_t size() const noexcept { return entries_.size(); }

private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    // Owned storage (unique_ptr keeps addresses stable across map growth).
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<stats::Histogram> hist;
    // Views.
    const std::uint64_t* counter_view = nullptr;
    std::function<double()> gauge_view;
    const stats::Histogram* hist_view = nullptr;

    double scalar() const;
  };

  static std::string key_of(std::string_view name, const Labels& labels);
  Entry& emplace(std::string name, Labels labels, MetricKind kind);

  // Key = name + '\0' + rendered labels: lexicographic map order == sort by
  // (name, labels), and all label sets of one name stay contiguous.
  std::map<std::string, Entry> entries_;
};

}  // namespace sdmbox::obs
