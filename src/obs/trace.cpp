#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sdmbox::obs {

const char* to_string(Hop hop) noexcept {
  switch (hop) {
    case Hop::kInjected: return "injected";
    case Hop::kClassified: return "classified";
    case Hop::kCacheHit: return "cache_hit";
    case Hop::kCacheMiss: return "cache_miss";
    case Hop::kDenied: return "denied";
    case Hop::kPermitted: return "permitted";
    case Hop::kTunnelEncap: return "tunnel_encap";
    case Hop::kTunnelDecap: return "tunnel_decap";
    case Hop::kFunctionApplied: return "function_applied";
    case Hop::kLabelSwitchTx: return "label_switch_tx";
    case Hop::kLabelSwitchRx: return "label_switch_rx";
    case Hop::kChainTail: return "chain_tail";
    case Hop::kWpCacheResponse: return "wp_cache_response";
    case Hop::kFailoverReroute: return "failover_reroute";
    case Hop::kAnomaly: return "anomaly";
    case Hop::kDelivered: return "delivered";
    case Hop::kDropNodeDown: return "drop_node_down";
    case Hop::kDropNoRoute: return "drop_no_route";
    case Hop::kDropTtl: return "drop_ttl";
    case Hop::kDropQueue: return "drop_queue";
    case Hop::kDropLinkDown: return "drop_link_down";
    case Hop::kDropLinkLoss: return "drop_link_loss";
    case Hop::kLabelTeardown: return "label_teardown";
  }
  return "?";
}

TraceSampler::TraceSampler(double rate, std::uint64_t seed) : rate_(rate), seed_(seed) {
  // Clamp instead of asserting: a rate above 1 would overflow the 2^32
  // threshold scaling (llround of e.g. 1.5 * 2^32 truncates modulo 2^32 on
  // some platforms and traces *nothing*); NaN and negatives mean "off".
  if (!(rate_ >= 0.0)) rate_ = 0.0;  // also catches NaN
  if (rate_ > 1.0) rate_ = 1.0;
  threshold_ = static_cast<std::uint64_t>(std::llround(rate_ * 4294967296.0));  // rate * 2^32
}

TraceSink::TraceSink(std::size_t capacity) : capacity_(capacity) {
  SDM_CHECK_MSG(capacity > 0, "trace sink capacity must be positive");
  ring_.reserve(capacity < 4096 ? capacity : 4096);  // grow lazily up to capacity
}

void TraceSink::record(TraceRecord r) {
  if (ring_.size() < capacity_) {
    ring_.push_back(r);
  } else {
    ring_[recorded_ % capacity_] = r;
    ++dropped_;
  }
  ++recorded_;
}

std::vector<TraceRecord> TraceSink::records() const {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  if (recorded_ <= capacity_) {
    out = ring_;
    return out;
  }
  const std::size_t head = static_cast<std::size_t>(recorded_ % capacity_);
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head), ring_.end());
  out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(head));
  return out;
}

std::vector<TraceRecord> merge_trace_shards(const std::vector<const TraceCollector*>& shards) {
  struct Keyed {
    const TraceRecord* r;
    std::uint32_t shard;
    std::uint64_t idx;
  };
  std::vector<Keyed> keyed;
  std::size_t total = 0;
  for (const TraceCollector* c : shards) total += c->records().size();
  keyed.reserve(total);
  for (std::uint32_t s = 0; s < shards.size(); ++s) {
    const auto& recs = shards[s]->records();
    for (std::uint64_t i = 0; i < recs.size(); ++i) keyed.push_back(Keyed{&recs[i], s, i});
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.r->at != b.r->at) return a.r->at < b.r->at;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.idx < b.idx;
  });
  std::vector<TraceRecord> out;
  out.reserve(total);
  for (const Keyed& k : keyed) out.push_back(*k.r);
  return out;
}

}  // namespace sdmbox::obs
