// Per-flow path tracing: which hops did a flow's packets actually take
// through their enforcement chain, in simulated time?
//
// A deterministic sampler picks flows by hashing the 5-tuple against the
// sample rate (no RNG state, so the same flows are traced in every run with
// the same seed — a prerequisite for byte-identical trace dumps). Traced
// packets leave one TraceRecord per enforcement event (proxy classify,
// flow-cache hit/miss, tunnel encap/decap, label switch, failover reroute,
// chain tail, delivery, drops) in a bounded ring sink, so tracing at rate 1
// on a long run costs memory proportional to the ring, not the run.
//
// Disabled tracing is free on the hot path: SimNetwork carries a nullable
// PathTracer*, and with sample rate 0 record() rejects in one compare.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "packet/packet.hpp"

namespace sdmbox::obs {

/// Enforcement-plane event a traced packet passed through.
enum class Hop : std::uint8_t {
  kInjected,        // entered the network at its origin node
  kClassified,      // multi-field classifier consulted (cache miss path)
  kCacheHit,        // flow cache answered
  kCacheMiss,       // flow cache had no entry
  kDenied,          // dropped inline by a deny policy
  kPermitted,       // no chain: released to plain routing
  kTunnelEncap,     // IP-over-IP encapsulated toward a middlebox (detail = node)
  kTunnelDecap,     // outer header stripped at a middlebox
  kFunctionApplied, // middlebox applied one chain function (detail = function id)
  kLabelSwitchTx,   // sent on the switched path (detail = label)
  kLabelSwitchRx,   // label-switched packet consumed a label entry (detail = label)
  kChainTail,       // last middlebox of the chain released the packet
  kWpCacheResponse, // WP served the flow from cache; chain skipped (§III.F)
  kFailoverReroute, // steered past a blacklisted candidate (detail = new node)
  kAnomaly,         // a box could not interpret the packet
  kDelivered,       // consumed at its final destination
  kDropNodeDown,    // reached a crashed node
  kDropNoRoute,     // no route to destination
  kDropTtl,         // TTL expired
  kDropQueue,       // drop-tail queue overflow
  kDropLinkDown,    // transmitted onto a failed link
  kDropLinkLoss,    // injected probabilistic wire loss
  kLabelTeardown,   // a label binding was invalidated (detail = label)
};

const char* to_string(Hop hop) noexcept;

struct TraceRecord {
  double at = 0;            // simulated time of the event
  packet::FlowId flow;      // 5-tuple of the traced packet
  net::NodeId node;         // where the event happened
  Hop hop = Hop::kInjected;
  std::uint64_t detail = 0; // hop-specific (label, function id, node id); 0 = none
  std::uint64_t seq = 0;    // packet index within its flow (ties records to one packet)
};

/// Live consumer of sampled trace records, notified as each record is made
/// (before any ring eviction, so it sees the full stream even when the
/// bounded sink wraps). Observers must not mutate the tracer.
class TraceObserver {
public:
  virtual ~TraceObserver() = default;
  virtual void on_record(const TraceRecord& r) = 0;
};

/// Deterministic flow sampler: a flow is traced iff the low 32 bits of its
/// seeded 5-tuple hash fall under rate * 2^32. Stateless, so every packet of
/// a flow agrees, and runs with equal seeds trace equal flow sets. Rates
/// outside [0, 1] are clamped (a rate > 1 would otherwise overflow the 2^32
/// threshold scaling and trace nothing).
class TraceSampler {
public:
  explicit TraceSampler(double rate = 0.0, std::uint64_t seed = kDefaultSeed);

  bool sampled(const packet::FlowId& flow) const noexcept {
    if (threshold_ == 0) return false;
    return (flow.hash(seed_) & 0xffffffffULL) < threshold_;
  }

  double rate() const noexcept { return rate_; }
  std::uint64_t seed() const noexcept { return seed_; }

  static constexpr std::uint64_t kDefaultSeed = 0x7aceULL;  // "trace"

private:
  double rate_;
  std::uint64_t seed_;
  std::uint64_t threshold_;  // rate scaled to 2^32; 2^32 traces everything
};

/// Bounded ring of trace records: the newest `capacity` records survive, and
/// the dropped count says how much history was shed (each overwrite drops
/// exactly one record, counted explicitly so consumers can tell a complete
/// ring from a wrapped one).
class TraceSink {
public:
  explicit TraceSink(std::size_t capacity = 1 << 16);

  void record(TraceRecord r);

  /// Surviving records, oldest first.
  std::vector<TraceRecord> records() const;

  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t recorded() const noexcept { return recorded_; }
  /// Records shed from the ring by overwrite; > 0 means history is incomplete.
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t overwritten() const noexcept { return dropped_; }

private:
  std::size_t capacity_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<TraceRecord> ring_;
};

/// Sampler + sink, wired into SimNetwork via set_tracer(). Agents call
/// record() unconditionally for traced events; the sampler gate is inside.
/// An optional live observer (e.g. the enforcement-invariant oracle) sees
/// every sampled record as it happens, independent of ring capacity.
class PathTracer {
public:
  explicit PathTracer(double sample_rate, std::size_t capacity = 1 << 16,
                      std::uint64_t seed = TraceSampler::kDefaultSeed)
      : sampler_(sample_rate, seed), sink_(capacity) {}

  void record(Hop hop, const packet::FlowId& flow, double at, net::NodeId node,
              std::uint64_t detail = 0, std::uint64_t seq = 0) {
    if (!sampler_.sampled(flow)) return;
    const TraceRecord r{at, flow, node, hop, detail, seq};
    sink_.record(r);
    if (observer_ != nullptr) observer_->on_record(r);
  }

  /// Attach/detach a live record consumer; nullptr detaches. Not owned.
  void set_observer(TraceObserver* observer) noexcept { observer_ = observer; }
  TraceObserver* observer() const noexcept { return observer_; }

  bool sampled(const packet::FlowId& flow) const noexcept { return sampler_.sampled(flow); }

  const TraceSampler& sampler() const noexcept { return sampler_; }
  const TraceSink& sink() const noexcept { return sink_; }

private:
  TraceSampler sampler_;
  TraceSink sink_;
  TraceObserver* observer_ = nullptr;
};

/// Unbounded capture of one region's full trace stream (every sampled
/// record, before any ring eviction). The partitioned engine attaches one
/// per region tracer; merge_trace_shards() then rebuilds the global stream.
/// Memory is proportional to the traffic actually traced — partitioned runs
/// that export traces accept that cost in exchange for exact merging.
class TraceCollector final : public TraceObserver {
public:
  void on_record(const TraceRecord& r) override { records_.push_back(r); }

  const std::vector<TraceRecord>& records() const noexcept { return records_; }
  void clear() noexcept { records_.clear(); }

private:
  std::vector<TraceRecord> records_;
};

/// Merge per-region trace streams into one deterministic global stream:
/// stable sort by time, ties broken by (shard index, within-shard order).
/// Per-packet causality survives because all equal-time records of one
/// packet happen at one node, and a node lives in exactly one shard — so
/// their relative (shard, index) order is their original order. Shard
/// streams are NOT individually time-sorted (kInjected records are stamped
/// at schedule time with a future `at`), hence the full sort.
std::vector<TraceRecord> merge_trace_shards(
    const std::vector<const TraceCollector*>& shards);

}  // namespace sdmbox::obs
