#include "obs/metrics.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sdmbox::obs {

Labels::Labels(std::initializer_list<std::pair<std::string, std::string>> kv) {
  for (const auto& [k, v] : kv) set(k, v);
}

Labels& Labels::set(std::string key, std::string value) {
  SDM_CHECK_MSG(!key.empty(), "label keys must be non-empty");
  const auto at = std::lower_bound(
      items_.begin(), items_.end(), key,
      [](const auto& item, const std::string& k) { return item.first < k; });
  if (at != items_.end() && at->first == key) {
    at->second = std::move(value);
  } else {
    items_.insert(at, {std::move(key), std::move(value)});
  }
  return *this;
}

const std::string* Labels::get(std::string_view key) const noexcept {
  for (const auto& [k, v] : items_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Labels::render() const {
  if (items_.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += ',';
    out += items_[i].first;
    out += "=\"";
    out += items_[i].second;
    out += '"';
  }
  out += '}';
  return out;
}

const char* to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

double MetricsRegistry::Entry::scalar() const {
  switch (kind) {
    case MetricKind::kCounter:
      return static_cast<double>(counter ? counter->value : *counter_view);
    case MetricKind::kGauge:
      return gauge ? gauge->value : gauge_view();
    case MetricKind::kHistogram:
      return static_cast<double>((hist ? hist.get() : hist_view)->count());
  }
  return 0;
}

std::string MetricsRegistry::key_of(std::string_view name, const Labels& labels) {
  std::string key(name);
  key += '\0';
  key += labels.render();
  return key;
}

MetricsRegistry::Entry& MetricsRegistry::emplace(std::string name, Labels labels,
                                                 MetricKind kind) {
  SDM_CHECK_MSG(!name.empty(), "metric names must be non-empty");
  auto [it, inserted] = entries_.try_emplace(key_of(name, labels));
  Entry& e = it->second;
  if (inserted) {
    e.name = std::move(name);
    e.labels = std::move(labels);
    e.kind = kind;
  } else {
    SDM_CHECK_MSG(e.kind == kind,
                  "metric re-registered with a different kind: " + e.name + e.labels.render());
  }
  return e;
}

Counter& MetricsRegistry::counter(std::string name, Labels labels) {
  Entry& e = emplace(std::move(name), std::move(labels), MetricKind::kCounter);
  SDM_CHECK_MSG(e.counter_view == nullptr,
                "owned counter collides with an exposed view: " + e.name + e.labels.render());
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(std::string name, Labels labels) {
  Entry& e = emplace(std::move(name), std::move(labels), MetricKind::kGauge);
  SDM_CHECK_MSG(!e.gauge_view,
                "owned gauge collides with an exposed view: " + e.name + e.labels.render());
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

stats::Histogram& MetricsRegistry::histogram(std::string name, Labels labels) {
  Entry& e = emplace(std::move(name), std::move(labels), MetricKind::kHistogram);
  SDM_CHECK_MSG(e.hist_view == nullptr,
                "owned histogram collides with an exposed view: " + e.name + e.labels.render());
  if (!e.hist) e.hist = std::make_unique<stats::Histogram>();
  return *e.hist;
}

void MetricsRegistry::expose_counter(std::string name, Labels labels,
                                     const std::uint64_t* value) {
  SDM_CHECK(value != nullptr);
  Entry& e = emplace(std::move(name), std::move(labels), MetricKind::kCounter);
  SDM_CHECK_MSG(!e.counter && e.counter_view == nullptr,
                "duplicate metric registration: " + e.name + e.labels.render());
  e.counter_view = value;
}

void MetricsRegistry::expose_gauge(std::string name, Labels labels,
                                   std::function<double()> fn) {
  SDM_CHECK(fn != nullptr);
  Entry& e = emplace(std::move(name), std::move(labels), MetricKind::kGauge);
  SDM_CHECK_MSG(!e.gauge && !e.gauge_view,
                "duplicate metric registration: " + e.name + e.labels.render());
  e.gauge_view = std::move(fn);
}

void MetricsRegistry::expose_histogram(std::string name, Labels labels,
                                       const stats::Histogram* hist) {
  SDM_CHECK(hist != nullptr);
  Entry& e = emplace(std::move(name), std::move(labels), MetricKind::kHistogram);
  SDM_CHECK_MSG(!e.hist && e.hist_view == nullptr,
                "duplicate metric registration: " + e.name + e.labels.render());
  e.hist_view = hist;
}

std::vector<MetricSample> MetricsRegistry::collect() const {
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    MetricSample s;
    s.name = e.name;
    s.labels = e.labels;
    s.kind = e.kind;
    s.value = e.scalar();
    if (e.kind == MetricKind::kHistogram) {
      s.histogram = (e.hist ? e.hist.get() : e.hist_view)->snapshot();
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::optional<double> MetricsRegistry::value(std::string_view name, const Labels& labels) const {
  const auto it = entries_.find(key_of(name, labels));
  if (it == entries_.end()) return std::nullopt;
  return it->second.scalar();
}

double MetricsRegistry::total(std::string_view name) const {
  double sum = 0;
  std::string prefix(name);
  prefix += '\0';
  for (auto it = entries_.lower_bound(prefix);
       it != entries_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
    sum += it->second.scalar();
  }
  return sum;
}

}  // namespace sdmbox::obs
