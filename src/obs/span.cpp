#include "obs/span.hpp"

#include <algorithm>

namespace sdmbox::obs {

double Span::attr_or(std::string_view key, double fallback) const noexcept {
  for (const auto& [k, v] : attrs) {
    if (k == key) return v;
  }
  return fallback;
}

SpanTracer::SpanTracer(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

SpanId SpanTracer::begin(std::string name, double at, SpanId parent, std::string device,
                         std::string subsystem) {
  const SpanId id = next_++;
  Span& s = ring_[slot(id)];
  if (s.id != 0 && s.open()) {
    // Evicting an open span: drop it from the open list too.
    open_.erase(std::remove(open_.begin(), open_.end(), s.id), open_.end());
  }
  s = Span{};
  s.id = id;
  s.name = std::move(name);
  s.device = std::move(device);
  s.subsystem = std::move(subsystem);
  s.start = at;
  if (const Span* p = find(parent); p != nullptr) {
    s.parent = parent;
    s.trace = p->trace;
  } else {
    s.parent = 0;  // evicted/unknown parent degrades to a root
    s.trace = id;
  }
  open_.push_back(id);
  return id;
}

void SpanTracer::end(SpanId id, double at) {
  Span* s = mutable_find(id);
  if (s == nullptr || !s->open()) return;
  s->end = at;
  open_.erase(std::remove(open_.begin(), open_.end(), id), open_.end());
}

SpanId SpanTracer::instant(std::string name, double at, SpanId parent, std::string device,
                           std::string subsystem) {
  const SpanId id =
      begin(std::move(name), at, parent, std::move(device), std::move(subsystem));
  end(id, at);
  return id;
}

void SpanTracer::set_attr(SpanId id, std::string_view key, double value) {
  Span* s = mutable_find(id);
  if (s == nullptr) return;
  auto it = std::lower_bound(s->attrs.begin(), s->attrs.end(), key,
                             [](const auto& kv, std::string_view k) { return kv.first < k; });
  if (it != s->attrs.end() && it->first == key) {
    it->second = value;
  } else {
    s->attrs.emplace(it, std::string(key), value);
  }
}

void SpanTracer::add_attr(SpanId id, std::string_view key, double delta) {
  Span* s = mutable_find(id);
  if (s == nullptr) return;
  set_attr(id, key, s->attr_or(key, 0) + delta);
}

const Span* SpanTracer::find(SpanId id) const noexcept {
  if (id == 0 || id >= next_) return nullptr;
  if (next_ - 1 - id >= capacity_) return nullptr;  // evicted
  const Span& s = ring_[slot(id)];
  return s.id == id ? &s : nullptr;
}

Span* SpanTracer::mutable_find(SpanId id) noexcept {
  return const_cast<Span*>(static_cast<const SpanTracer*>(this)->find(id));
}

std::vector<Span> SpanTracer::spans() const {
  std::vector<Span> out;
  const SpanId total = next_ - 1;
  const SpanId first = total > capacity_ ? total - capacity_ + 1 : 1;
  out.reserve(total - first + 1);
  for (SpanId id = first; id <= total; ++id) {
    if (const Span* s = find(id)) out.push_back(*s);
  }
  return out;
}

std::uint64_t SpanTracer::dropped() const noexcept {
  const std::uint64_t total = next_ - 1;
  return total > capacity_ ? total - capacity_ : 0;
}

SpanId SpanTracer::latest_open(std::string_view prefix) const noexcept {
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    const Span* s = find(*it);
    if (s != nullptr && s->name.compare(0, prefix.size(), prefix) == 0) return *it;
  }
  return 0;
}

void SpanTracer::correlate(std::uint64_t key, SpanId id) { correlations_[key] = id; }

SpanId SpanTracer::correlated_open(std::uint64_t key) const noexcept {
  auto it = correlations_.find(key);
  if (it == correlations_.end()) return 0;
  const Span* s = find(it->second);
  return (s != nullptr && s->open()) ? it->second : 0;
}

}  // namespace sdmbox::obs
