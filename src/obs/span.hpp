// Causal control-plane spans — the third telemetry pillar next to metrics
// (what happened, in aggregate) and packet traces (what one packet did).
//
// A Span is one control-plane activity on the SIMULATED clock: a name,
// device/subsystem labels, start/end sim-time, a parent span, the trace it
// belongs to (the root span's id), and sorted key=value numeric attributes.
// Components begin a span when an episode opens (a fault fires, drift
// trips), add children for each causal stage (detection, LP solve, plan
// diff, per-device push, ack), and end spans as the stages complete — so a
// whole dependability episode exports as one tree whose edge timestamps ARE
// the convergence latencies.
//
// Determinism contract (same as the rest of obs):
//  * ids are sequential and assigned in call order — same-seed runs produce
//    identical span tables, so JSON/CSV exports are byte-identical;
//  * storage is a bounded ring over ids (capacity newest spans survive,
//    dropped() counts eviction); operations on evicted ids are no-ops;
//  * attributes are numeric only and kept sorted by key;
//  * the tracer never schedules events, draws randomness, or touches the
//    components it observes — attaching it cannot perturb a run.
//
// Cross-component correlation runs through two tiny facilities:
//  * correlate(key, id) / correlated_open(key) — the fault injector files
//    its episode root under the crashed node's id; the health monitor finds
//    it again at declaration time without knowing the injector exists;
//  * push_context(id) / context() — a caller (health repush, drift loop)
//    parks the episode span it acts on behalf of; ControllerAgent::replan
//    parents its span under the context top and closes every context
//    episode when the rollout is fully acknowledged.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sdmbox::obs {

using SpanId = std::uint64_t;  // sequential from 1; 0 = "no span"

struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = root
  SpanId trace = 0;   // root span id of this tree
  std::string name;
  std::string device;     // node name, "" when not device-scoped
  std::string subsystem;  // fault / health / controller / reoptimize / ...
  double start = 0;       // simulated seconds
  double end = -1;        // simulated seconds; < 0 = still open
  /// Numeric attributes, sorted by key (numbers keep exports trivially
  /// deterministic; enumerations go into the span NAME, e.g. "replan:drift").
  std::vector<std::pair<std::string, double>> attrs;

  bool open() const noexcept { return end < 0; }
  double duration() const noexcept { return open() ? 0.0 : end - start; }
  /// Attribute value, or `fallback` when the key is absent.
  double attr_or(std::string_view key, double fallback = 0) const noexcept;
};

class SpanTracer {
public:
  explicit SpanTracer(std::size_t capacity = 1 << 12);

  // --- span lifecycle ---------------------------------------------------

  /// Open a span starting `at`. A zero parent makes a root (trace = own id);
  /// otherwise the trace id is inherited from the parent (an evicted or
  /// unknown parent degrades to a root — never an error).
  SpanId begin(std::string name, double at, SpanId parent = 0, std::string device = {},
               std::string subsystem = {});

  /// Close an open span at `at`. No-op on unknown/evicted/closed ids.
  void end(SpanId id, double at);

  /// A zero-duration span (begin + end at the same instant).
  SpanId instant(std::string name, double at, SpanId parent = 0, std::string device = {},
                 std::string subsystem = {});

  /// Insert or overwrite one attribute (kept sorted by key). No-op on
  /// evicted/unknown ids.
  void set_attr(SpanId id, std::string_view key, double value);
  /// Add `delta` to an attribute, creating it at `delta` when absent.
  void add_attr(SpanId id, std::string_view key, double delta);

  // --- lookup -----------------------------------------------------------

  /// The span, or nullptr when unknown or evicted. The pointer is
  /// invalidated by the next begin()/instant().
  const Span* find(SpanId id) const noexcept;

  /// Surviving spans in id (creation) order — the export order.
  std::vector<Span> spans() const;

  std::uint64_t started() const noexcept { return next_ - 1; }
  /// Spans shed from the ring by eviction; > 0 means history is incomplete.
  std::uint64_t dropped() const noexcept;
  std::size_t capacity() const noexcept { return capacity_; }

  /// Ids of currently open (un-ended, un-evicted) spans, in begin order.
  const std::vector<SpanId>& open_spans() const noexcept { return open_; }
  /// Most recently begun open span whose name starts with `prefix`; 0 when
  /// none. How the oracle finds "the replan in flight right now".
  SpanId latest_open(std::string_view prefix) const noexcept;

  // --- correlation ------------------------------------------------------

  /// File `id` under an arbitrary 64-bit key (e.g. a crashed node id).
  void correlate(std::uint64_t key, SpanId id);
  /// The span filed under `key`, provided it is still alive AND open;
  /// 0 otherwise.
  SpanId correlated_open(std::uint64_t key) const noexcept;

  // --- context stack ----------------------------------------------------

  /// Park a span id for a downstream component to pick up (LIFO).
  void push_context(SpanId id) { context_.push_back(id); }
  void pop_context() {
    if (!context_.empty()) context_.pop_back();
  }
  /// Top of the context stack; 0 when empty.
  SpanId context() const noexcept { return context_.empty() ? 0 : context_.back(); }
  const std::vector<SpanId>& context_stack() const noexcept { return context_; }

private:
  Span* mutable_find(SpanId id) noexcept;
  std::size_t slot(SpanId id) const noexcept { return (id - 1) % capacity_; }

  std::size_t capacity_;
  SpanId next_ = 1;         // id the next begin() will assign
  std::vector<Span> ring_;  // slot (id-1) % capacity holds span `id` while alive
  std::vector<SpanId> open_;
  std::unordered_map<std::uint64_t, SpanId> correlations_;
  std::vector<SpanId> context_;
};

}  // namespace sdmbox::obs
