#include "obs/timeseries.hpp"

#include "util/check.hpp"

namespace sdmbox::obs {

EpochRecorder::EpochRecorder(const MetricsRegistry& registry, double period)
    : registry_(registry), period_(period) {
  SDM_CHECK_MSG(period > 0, "epoch period must be positive");
}

void EpochRecorder::sample(double now) {
  SDM_CHECK_MSG(epochs_.empty() || now >= epochs_.back(),
                "epoch snapshots must move forward in time");
  epochs_.push_back(now);
  for (MetricSample& s : registry_.collect()) {
    std::string key = s.name;
    key += '\0';
    key += s.labels.render();
    auto [it, inserted] = series_.try_emplace(std::move(key));
    Series& series = it->second;
    if (inserted) {
      series.name = std::move(s.name);
      series.labels = std::move(s.labels);
      series.kind = s.kind;
    }
    // Metrics registered after earlier epochs: left-pad with zeros so the
    // series stays aligned with epochs().
    series.values.resize(epochs_.size() - 1, 0.0);
    series.values.push_back(s.value);
  }
}

void EpochRecorder::start(ScheduleIn schedule, Clock clock) {
  if (running_) return;
  SDM_CHECK(schedule != nullptr && clock != nullptr);
  running_ = true;
  schedule_ = std::move(schedule);
  clock_ = std::move(clock);
  tick();
}

void EpochRecorder::tick() {
  if (!running_) return;
  sample(clock_());
  schedule_(period_, [this] { tick(); });
}

const EpochRecorder::Series* EpochRecorder::find(std::string_view name,
                                                 const Labels& labels) const {
  std::string key{name};
  key += '\0';
  key += labels.render();
  const auto it = series_.find(key);
  return it == series_.end() ? nullptr : &it->second;
}

std::vector<const EpochRecorder::Series*> EpochRecorder::find_all(std::string_view name) const {
  std::vector<const Series*> out;
  std::string prefix{name};
  prefix += '\0';
  for (auto it = series_.lower_bound(prefix); it != series_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(&it->second);
  }
  return out;
}

std::optional<double> EpochRecorder::latest(std::string_view name, const Labels& labels) const {
  const Series* s = find(name, labels);
  if (s == nullptr || s->values.empty()) return std::nullopt;
  return s->values.back();
}

std::vector<EpochRecorder::Series> EpochRecorder::series() const {
  std::vector<Series> out;
  out.reserve(series_.size());
  for (const auto& [key, s] : series_) {
    out.push_back(s);
    out.back().values.resize(epochs_.size(), 0.0);
  }
  return out;
}

}  // namespace sdmbox::obs
