#include "verify/chaosgen.hpp"

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace sdmbox::verify {
namespace {

/// Links safe to flap: both endpoints are pure forwarders (gateway / core /
/// edge routers). Stub links to hosts, proxies or middleboxes would isolate
/// an element outright instead of forcing a reroute.
std::vector<net::LinkId> flappable_links(const net::Topology& topo) {
  std::vector<net::LinkId> out;
  for (std::uint32_t i = 0; i < topo.link_count(); ++i) {
    const net::LinkId id{i};
    const net::Link& l = topo.link(id);
    const net::NodeKind ka = topo.node(l.a).kind;
    const net::NodeKind kb = topo.node(l.b).kind;
    const auto routerish = [](net::NodeKind k) {
      return k == net::NodeKind::kGatewayRouter || k == net::NodeKind::kCoreRouter ||
             k == net::NodeKind::kEdgeRouter;
    };
    if (routerish(ka) && routerish(kb)) out.push_back(id);
  }
  return out;
}

}  // namespace

sim::FaultSchedule generate_chaos(const net::GeneratedNetwork& network,
                                  const core::Deployment& deployment, std::uint64_t seed,
                                  const ChaosGenParams& params) {
  sim::FaultSchedule schedule;
  const double span = params.horizon - params.start;
  if (!(span > 0)) return schedule;

  // Distinct stream per concern so adding flaps never reshuffles crashes.
  util::Rng crash_rng(util::mix64(seed ^ 0xc4a55eedULL));
  util::Rng link_rng(util::mix64(seed ^ 0xf1a95eedULL));
  util::Rng loss_rng(util::mix64(seed ^ 0x1055edULL));

  std::vector<net::NodeId> boxes;
  for (const core::MiddleboxInfo& m : deployment.middleboxes()) boxes.push_back(m.node);

  // Crash/restart pairs in disjoint time slices: each victim is down for a
  // random sub-window of its slice and guaranteed back up before the next
  // fault of this class — no compounding, every schedule recoverable.
  if (!boxes.empty() && params.crash_pairs > 0) {
    const double slice = span / params.crash_pairs;
    for (int i = 0; i < params.crash_pairs; ++i) {
      const net::NodeId victim = boxes[crash_rng.pick_index(boxes.size())];
      const double s = params.start + slice * i;
      const double down = s + crash_rng.next_double() * slice * 0.4;
      const double outage =
          params.min_outage + crash_rng.next_double() * (slice * 0.5 - params.min_outage);
      schedule.crash_node(down, victim);
      schedule.restart_node(down + std::max(params.min_outage, outage), victim);
    }
  }

  const std::vector<net::LinkId> links = flappable_links(network.topo);
  if (!links.empty() && params.link_flaps > 0) {
    const double slice = span / params.link_flaps;
    for (int i = 0; i < params.link_flaps; ++i) {
      const net::LinkId link = links[link_rng.pick_index(links.size())];
      const double s = params.start + slice * i;
      const double down = s + link_rng.next_double() * slice * 0.4;
      const double outage =
          params.min_outage + link_rng.next_double() * (slice * 0.5 - params.min_outage);
      schedule.link_down(down, link);
      schedule.link_up(down + std::max(params.min_outage, outage), link);
    }
  }

  if (!links.empty() && params.loss_episodes > 0) {
    const double slice = span / params.loss_episodes;
    for (int i = 0; i < params.loss_episodes; ++i) {
      const net::LinkId link = links[loss_rng.pick_index(links.size())];
      const double s = params.start + slice * i;
      const double begin = s + loss_rng.next_double() * slice * 0.4;
      const double length =
          params.min_outage + loss_rng.next_double() * (slice * 0.5 - params.min_outage);
      const double rate = 0.05 + loss_rng.next_double() * (params.max_loss - 0.05);
      schedule.link_loss(begin, link, rate);
      schedule.link_loss(begin + std::max(params.min_outage, length), link, 0.0);
    }
  }

  return schedule;
}

}  // namespace sdmbox::verify
