// Seeded chaos-schedule generator: many fault timelines from one knob.
//
// The hand-written kChaos script exercises ONE failure interleaving. The
// generator derives a randomized crash/restart + link-flap + transient-loss
// schedule from a single seed, so a suite can sweep dozens of distinct
// fault interleavings (one derived seed each) and the invariant oracle can
// assert enforcement holds under all of them — same seed, same schedule,
// byte-identical runs.
//
// Construction rules keep every schedule recoverable: crash/restart pairs
// and link outages are confined to disjoint time slices of [start, horizon]
// (no compounding outages of the same element), victims are deployed
// middleboxes (local failover's job), and flapped links attach to core
// routers (redundant paths exist; a downed stub link would just silence a
// subnet, testing nothing).
#pragma once

#include <cstdint>

#include "core/deployment.hpp"
#include "net/topologies.hpp"
#include "sim/faults.hpp"

namespace sdmbox::verify {

struct ChaosGenParams {
  double start = 1.5;    // first fault no earlier than this
  double horizon = 12.0; // every element restored by this time
  int crash_pairs = 2;   // middlebox crash/restart pairs
  int link_flaps = 2;    // link down/up pairs on core-adjacent links
  int loss_episodes = 1; // transient probabilistic-loss windows
  double min_outage = 0.3;
  double max_loss = 0.3; // peak loss rate of a loss episode
};

/// Derive a deterministic fault schedule from `seed`. Same inputs, same
/// schedule — the generator is a pure function, so generated-fault runs keep
/// the simulator's byte-identical replay property.
sim::FaultSchedule generate_chaos(const net::GeneratedNetwork& network,
                                  const core::Deployment& deployment, std::uint64_t seed,
                                  const ChaosGenParams& params = {});

}  // namespace sdmbox::verify
