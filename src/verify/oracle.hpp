// Online enforcement-invariant oracle — the "dependable" in dependable
// policy enforcement, checked instead of assumed.
//
// The oracle is a live obs::TraceObserver: attached to the PathTracer it
// sees every sampled record the instant an agent emits it, independent of
// the bounded ring (which may wrap on long runs). From the record stream
// plus the controller's compiled state it asserts, per traced packet:
//
//  1. Chain completeness & order — every packet of a flow matched to a
//     chained policy visits every required function, in policy order,
//     before delivery. Failover and replans may change WHICH middlebox
//     serves a function, never skip or reorder one.
//  2. Isolation — no such packet reaches its destination without a complete
//     chain, including across label teardown/reuse and mid-replan windows.
//     Legitimate in-flight losses (crashed node, dark link, expired label
//     state) are accounted as drops, never silently excused as "enforced".
//  3. Label-path / IP-path equivalence — a label-switched packet's
//     middlebox hop sequence must equal a sequence its flow actually
//     established with tunneled (IP-over-IP) packets in the current label
//     epoch (epochs advance on teardown; §III.E soft state).
//
// Legal non-delivery outcomes the oracle accounts for instead of flagging:
// inline deny (kDenied), WP cache response truncating the chain (§III.F),
// every drop class, anomaly-sunk packets consumed away from the true
// destination, and packets still in flight at end of run.
//
// Two deliberate relaxations, both documented in DESIGN.md §11: a flow may
// establish SEVERAL box paths per epoch (failover during establishment), so
// a switched sequence passes if it matches ANY of them; and below trace
// rate 1.0 mid-chain switched records (whose on-wire 5-tuple is rewritten)
// may be unsampled, so strict label-path comparison only runs when the
// caller promises a complete stream (set_complete_stream).
//
// Determinism: the oracle is a pure function of the record stream, so
// same-seed runs produce identical reports, and attaching it never perturbs
// the run (observers cannot mutate the tracer; metrics are registered only
// in verify mode).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/deployment.hpp"
#include "core/plan.hpp"
#include "net/routing.hpp"
#include "net/topologies.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "policy/function.hpp"
#include "policy/policy.hpp"

namespace sdmbox::verify {

/// Invariant-violation classes the oracle distinguishes (one counter each).
enum class ViolationKind : std::uint8_t {
  kSkippedFunction,        // delivered with required chain functions unvisited
  kReorderedChain,         // functions applied out of policy order
  kUnexpectedFunction,     // function applied off-policy or by a non-implementer
  kDeliveredWithoutChain,  // chained-policy packet delivered with no chain evidence
  kLabelPathDivergence,    // switched hop sequence matches no established path
  kPostTeardownLabelUse,   // label path used after teardown without re-establishment
};
inline constexpr std::size_t kViolationKindCount = 6;

const char* to_string(ViolationKind k) noexcept;

struct Violation {
  ViolationKind kind = ViolationKind::kSkippedFunction;
  packet::FlowId flow;   // original 5-tuple of the offending packet
  std::uint64_t seq = 0; // packet index within the flow
  double at = 0;         // simulated time the violation became definite
  /// Human-readable account: what the policy required, what the packet did,
  /// hop by hop with times and device names.
  std::string narrative;
};

/// Everything the oracle concluded about one run.
struct VerifyReport {
  std::vector<Violation> violations;  // record order — deterministic

  // Packet accounting (every tracked packet lands in exactly one bucket).
  std::uint64_t records_seen = 0;
  std::uint64_t packets_tracked = 0;
  std::uint64_t packets_delivered_ok = 0;
  std::uint64_t packets_denied = 0;
  std::uint64_t packets_dropped = 0;       // legitimate in-flight losses
  std::uint64_t packets_wp_served = 0;     // §III.F legal chain truncation
  std::uint64_t packets_anomaly_sunk = 0;  // consumed away from the destination
  std::uint64_t packets_in_flight = 0;     // still open at finish()
  std::uint64_t packets_violating = 0;     // packets with >= 1 violation
  std::uint64_t packets_unverified = 0;    // ambiguous identity (alias collision)
  std::uint64_t untracked_records = 0;     // records matching no tracked packet
  std::uint64_t teardown_notices = 0;      // label-teardown records consumed
  std::uint64_t policy_conflicts = 0;      // re-classification disagreed with first
  /// Deliveries that happened while a replan was still rolling out or an
  /// unenforced fault episode was open (span tracer attached only): the
  /// paper's transient windows, tolerated but never uncounted.
  std::uint64_t packets_in_unenforced_window = 0;

  /// False when the oracle may have missed records (post-hoc replay over a
  /// wrapped ring). A live-attached oracle always has complete coverage.
  bool coverage_complete = true;
  std::string coverage_note;

  bool ok() const noexcept { return violations.empty() && coverage_complete; }
  /// One-paragraph human summary (counts + first violations).
  std::string summary() const;
};

/// Live enforcement-invariant checker. Construct over the run's compiled
/// state, attach to the tracer (tracer.set_observer(&oracle)) or replay a
/// sink post-hoc, then finish() to close accounting and read the report.
class InvariantOracle : public obs::TraceObserver {
public:
  InvariantOracle(const net::GeneratedNetwork& network, const core::Deployment& deployment,
                  const policy::PolicyList& policies, const core::EnforcementPlan& plan,
                  const policy::FunctionCatalog* catalog = nullptr);

  /// Promise that every record of every traced flow reaches the oracle
  /// (trace rate 1.0, live attachment). Enables the strict label-path
  /// equivalence check; below rate 1.0 mid-chain switched records carry a
  /// rewritten 5-tuple the sampler may reject, so only the weaker
  /// subsequence check is sound. Default: strict.
  void set_complete_stream(bool complete) noexcept { complete_stream_ = complete; }

  /// Live entry point (TraceObserver).
  void on_record(const obs::TraceRecord& r) override;

  /// Post-hoc mode: feed a ring's surviving records. Sets coverage-incomplete
  /// when the ring wrapped (records were shed), instead of false-passing.
  void replay(const obs::TraceSink& sink);

  /// Close accounting (open packets become in-flight counts; no violations
  /// are emitted for them — their fate is unknown, not wrong). Idempotent.
  const VerifyReport& finish();

  const VerifyReport& report() const noexcept { return report_; }

  /// Expose verify_* series. Register only in verify mode so non-verify
  /// exports stay byte-identical. With a span tracer attached (before this
  /// call) also exposes conv_unenforced_window_packets.
  void register_metrics(obs::MetricsRegistry& registry) const;

  /// Cross-link the control-plane span tracer: each delivered-ok packet
  /// that lands while a replan span (or unenforced fault episode) is open
  /// is counted into packets_in_unenforced_window and attributed onto that
  /// span's `packets_in_window` attribute — "packets forwarded inside
  /// unenforced windows", per episode. Observation only.
  void set_span_tracer(obs::SpanTracer* spans) noexcept { spans_ = spans; }

private:
  // ---- per-packet state ----
  struct PacketKey {
    packet::FlowId flow;
    std::uint64_t seq = 0;
    friend bool operator==(const PacketKey&, const PacketKey&) noexcept = default;
  };
  struct PacketKeyHash {
    std::size_t operator()(const PacketKey& k) const noexcept;
  };

  enum class Mode : std::uint8_t {
    kOpen,      // injected, not yet classified into a path
    kPlain,     // permitted: plain routing, no chain required
    kDenied,    // inline deny at the proxy (terminal)
    kTunneled,  // IP-over-IP chain traversal
    kSwitched,  // label-switched chain traversal
  };

  struct PacketState {
    PacketKey key;
    Mode mode = Mode::kOpen;
    bool chain_tail = false;
    bool violated = false;
    bool anomaly = false;
    bool unverified = false;  // alias collision: identity ambiguous
    std::uint32_t visited = 0;        // chain functions confirmed in order
    std::uint32_t path_epoch = 0;     // flow's teardown epoch at switch time
    std::uint16_t label = 0;
    bool has_alias = false;
    std::vector<policy::FunctionId> applied;  // functions applied, in order
    std::vector<net::NodeId> boxes;   // distinct consecutive middlebox visits
    std::vector<obs::TraceRecord> history;  // capped; fuels narratives
  };

  // ---- per-flow state ----
  struct FlowState {
    policy::PolicyId policy;      // committed matched policy
    bool policy_known = false;
    bool touched_proxy = false;   // flow crossed a policy proxy (in scope)
    std::uint64_t candidate = 0;  // last proxy kClassified detail, pre-commit
    bool has_candidate = false;
    std::uint32_t epoch = 0;      // bumped on label teardown
    double torn_at = -1;          // last teardown time; < 0 = never
    /// Box sequences completed by tunneled packets, indexed by epoch. A set
    /// per epoch: failover during establishment can legally install several.
    std::vector<std::vector<std::vector<net::NodeId>>> established;
  };
  struct FlowHash {
    std::size_t operator()(const packet::FlowId& f) const noexcept { return f.hash(0x5eedULL); }
  };

  PacketState* find_packet(const obs::TraceRecord& r);
  FlowState& flow_state(const packet::FlowId& flow);
  /// Count a clean delivery, attributing it to any open replan/unenforced
  /// episode span.
  void note_delivered_ok();
  const policy::Policy* committed_policy(const FlowState& fs) const;

  void handle_classified(const obs::TraceRecord& r, FlowState& fs);
  void handle_teardown(const obs::TraceRecord& r);
  void handle_function(const obs::TraceRecord& r, PacketState& ps);
  void handle_chain_tail(const obs::TraceRecord& r, PacketState& ps);
  void handle_delivered(const obs::TraceRecord& r, PacketState& ps);
  void finalize(PacketState& ps);  // remove from open maps after terminal hop

  void violation(ViolationKind kind, const PacketState& ps, double at,
                 const std::string& cause);
  std::string describe_chain(const policy::Policy& pol) const;
  std::string function_name(policy::FunctionId fn) const;
  std::string node_name(net::NodeId n) const;
  std::string hop_story(const PacketState& ps) const;

  bool is_proxy(net::NodeId n) const noexcept;
  bool at_destination(net::NodeId n, const packet::FlowId& flow) const;
  const policy::FunctionSet* box_functions(net::NodeId n) const;

  const net::Topology* topo_;
  const core::Deployment* deployment_;
  const policy::PolicyList* policies_;
  const core::EnforcementPlan* plan_;
  const policy::FunctionCatalog* catalog_;
  /// Same resolution the network delivers by: exact device address first,
  /// then longest-prefix stub subnet → terminal. Generated flows use host
  /// addresses without device nodes, so their delivery point is the
  /// destination subnet's terminal, not a node owning the exact address.
  net::AddressResolver resolver_;
  std::vector<bool> proxy_nodes_;                       // indexed by NodeId.v
  std::unordered_map<std::uint32_t, policy::FunctionSet> box_functions_;

  bool complete_stream_ = true;
  bool finished_ = false;
  obs::SpanTracer* spans_ = nullptr;

  std::unordered_map<packet::FlowId, FlowState, FlowHash> flows_;
  std::unordered_map<PacketKey, PacketState, PacketKeyHash> packets_;
  /// Mid-chain switched records carry a rewritten destination; this alias —
  /// keyed on everything BUT the destination — maps them back to the packet.
  /// Registered at kLabelSwitchTx, dropped at finalize. A colliding alias
  /// marks both packets unverified (counted, never silently excused).
  std::unordered_map<PacketKey, PacketKey, PacketKeyHash> aliases_;

  VerifyReport report_;
  std::array<std::uint64_t, kViolationKindCount> violation_counts_{};
};

}  // namespace sdmbox::verify
