#include "verify/oracle.hpp"

#include <algorithm>
#include <cstdio>

#include "util/hash.hpp"

namespace sdmbox::verify {
namespace {

/// Narratives keep the full story of short paths and elide the middle of
/// pathological ones.
constexpr std::size_t kHistoryCap = 96;
constexpr std::size_t kSummaryViolations = 5;

std::string fmt_time(double t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", t);
  return buf;
}

/// Is `seq` a subsequence of `path`? Used below trace rate 1.0, where
/// mid-chain switched records (rewritten 5-tuple) may be unsampled.
bool subsequence_of(const std::vector<net::NodeId>& seq, const std::vector<net::NodeId>& path) {
  std::size_t i = 0;
  for (const net::NodeId n : path) {
    if (i < seq.size() && seq[i] == n) ++i;
  }
  return i == seq.size();
}

}  // namespace

const char* to_string(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::kSkippedFunction: return "skipped_function";
    case ViolationKind::kReorderedChain: return "reordered_chain";
    case ViolationKind::kUnexpectedFunction: return "unexpected_function";
    case ViolationKind::kDeliveredWithoutChain: return "delivered_without_chain";
    case ViolationKind::kLabelPathDivergence: return "label_path_divergence";
    case ViolationKind::kPostTeardownLabelUse: return "post_teardown_label_use";
  }
  return "?";
}

std::string VerifyReport::summary() const {
  std::string out = "invariant oracle: ";
  out += std::to_string(violations.size()) + " violation(s) over " +
         std::to_string(packets_tracked) + " tracked packet(s) (" +
         std::to_string(records_seen) + " records; delivered_ok=" +
         std::to_string(packets_delivered_ok) + " denied=" + std::to_string(packets_denied) +
         " dropped=" + std::to_string(packets_dropped) +
         " wp_served=" + std::to_string(packets_wp_served) +
         " anomaly_sunk=" + std::to_string(packets_anomaly_sunk) +
         " in_flight=" + std::to_string(packets_in_flight) +
         " unverified=" + std::to_string(packets_unverified) + ")";
  if (packets_in_unenforced_window > 0) {
    out += "\n" + std::to_string(packets_in_unenforced_window) +
           " packet(s) were forwarded inside unenforced windows (open replan or "
           "crash episode) — tolerated, attributed to their episode spans";
  }
  if (!coverage_complete) out += "\ncoverage INCOMPLETE: " + coverage_note;
  const std::size_t shown = std::min(violations.size(), kSummaryViolations);
  for (std::size_t i = 0; i < shown; ++i) out += "\n  " + violations[i].narrative;
  if (violations.size() > shown) {
    out += "\n  ... and " + std::to_string(violations.size() - shown) + " more";
  }
  return out;
}

std::size_t InvariantOracle::PacketKeyHash::operator()(const PacketKey& k) const noexcept {
  return static_cast<std::size_t>(
      util::mix64(k.flow.hash(0xa11a5ULL) ^ (k.seq * 0x9e3779b97f4a7c15ULL)));
}

InvariantOracle::InvariantOracle(const net::GeneratedNetwork& network,
                                 const core::Deployment& deployment,
                                 const policy::PolicyList& policies,
                                 const core::EnforcementPlan& plan,
                                 const policy::FunctionCatalog* catalog)
    : topo_(&network.topo),
      deployment_(&deployment),
      policies_(&policies),
      plan_(&plan),
      catalog_(catalog),
      resolver_(net::AddressResolver::build(network.topo)) {
  proxy_nodes_.resize(topo_->node_count(), false);
  for (const net::NodeId p : network.proxies) {
    if (p.valid() && p.v < proxy_nodes_.size()) proxy_nodes_[p.v] = true;
  }
  for (const core::MiddleboxInfo& m : deployment.middleboxes()) {
    box_functions_.emplace(m.node.v, m.functions);
  }
}

bool InvariantOracle::is_proxy(net::NodeId n) const noexcept {
  return n.valid() && n.v < proxy_nodes_.size() && proxy_nodes_[n.v];
}

bool InvariantOracle::at_destination(net::NodeId n, const packet::FlowId& flow) const {
  if (!n.valid() || n.v >= topo_->node_count()) return false;
  if (topo_->node(n).address == flow.dst) return true;
  const auto terminal = resolver_.resolve(flow.dst);
  return terminal.has_value() && *terminal == n;
}

const policy::FunctionSet* InvariantOracle::box_functions(net::NodeId n) const {
  const auto it = box_functions_.find(n.v);
  return it == box_functions_.end() ? nullptr : &it->second;
}

std::string InvariantOracle::function_name(policy::FunctionId fn) const {
  if (catalog_ != nullptr && fn.valid() && fn.v < catalog_->size()) return catalog_->name(fn);
  return "fn" + std::to_string(fn.v);
}

std::string InvariantOracle::node_name(net::NodeId n) const {
  if (n.valid() && n.v < topo_->node_count()) return topo_->node(n).name;
  return "node" + std::to_string(n.v);
}

std::string InvariantOracle::describe_chain(const policy::Policy& pol) const {
  if (pol.deny) return "deny";
  if (pol.actions.empty()) return "permit";
  std::string out;
  for (std::size_t i = 0; i < pol.actions.size(); ++i) {
    if (i) out += "->";
    out += function_name(pol.actions[i]);
  }
  return out;
}

std::string InvariantOracle::hop_story(const PacketState& ps) const {
  std::string out;
  for (std::size_t i = 0; i < ps.history.size(); ++i) {
    const obs::TraceRecord& r = ps.history[i];
    if (i) out += " -> ";
    out += "t=" + fmt_time(r.at) + ' ' + obs::to_string(r.hop) + '@' + node_name(r.node);
    if (r.detail != 0) out += "(detail=" + std::to_string(r.detail) + ')';
  }
  if (ps.history.size() == kHistoryCap) out += " -> ... (history capped)";
  return out;
}

InvariantOracle::FlowState& InvariantOracle::flow_state(const packet::FlowId& flow) {
  return flows_[flow];
}

const policy::Policy* InvariantOracle::committed_policy(const FlowState& fs) const {
  if (!fs.policy_known || !fs.policy.valid() || fs.policy.v >= policies_->size()) return nullptr;
  return &policies_->at(fs.policy);
}

InvariantOracle::PacketState* InvariantOracle::find_packet(const obs::TraceRecord& r) {
  const PacketKey exact{r.flow, r.seq};
  if (const auto it = packets_.find(exact); it != packets_.end()) return &it->second;
  // Mid-chain switched records carry a rewritten destination: resolve via the
  // destination-agnostic alias registered at kLabelSwitchTx.
  PacketKey alias = exact;
  alias.flow.dst = net::IpAddress{};
  if (const auto ait = aliases_.find(alias); ait != aliases_.end()) {
    if (const auto it = packets_.find(ait->second); it != packets_.end()) return &it->second;
  }
  return nullptr;
}

void InvariantOracle::violation(ViolationKind kind, const PacketState& ps, double at,
                                const std::string& cause) {
  ++violation_counts_[static_cast<std::size_t>(kind)];
  Violation v;
  v.kind = kind;
  v.flow = ps.key.flow;
  v.seq = ps.key.seq;
  v.at = at;
  v.narrative = std::string("[") + to_string(kind) + "] flow " + ps.key.flow.to_string() +
                " seq " + std::to_string(ps.key.seq) + ": " + cause + "; hops: " + hop_story(ps);
  report_.violations.push_back(std::move(v));
}

void InvariantOracle::handle_teardown(const obs::TraceRecord& r) {
  ++report_.teardown_notices;
  // Only proxy-side teardown records carry true 5-tuples (the middlebox-side
  // ones are synthesized from the label key, which lost the full tuple).
  if (!is_proxy(r.node)) return;
  const auto it = flows_.find(r.flow);
  if (it == flows_.end()) return;
  FlowState& fs = it->second;
  ++fs.epoch;
  fs.torn_at = r.at;
  if (fs.established.size() <= fs.epoch) fs.established.resize(fs.epoch + 1);
}

void InvariantOracle::handle_classified(const obs::TraceRecord& r, FlowState& fs) {
  if (!is_proxy(r.node)) {
    // Middlebox-side re-classification: cross-check only.
    if (fs.policy_known && fs.policy.v != r.detail) ++report_.policy_conflicts;
    return;
  }
  fs.touched_proxy = true;
  if (fs.policy_known) {
    if (fs.policy.v != r.detail) ++report_.policy_conflicts;
    return;
  }
  // detail is `policy id or 0 for no match`; committing waits for the next
  // hop (deny/tunnel/switch names the real id, permit needs none), which
  // disambiguates id 0 from "no policy".
  fs.candidate = r.detail;
  fs.has_candidate = true;
}

void InvariantOracle::handle_function(const obs::TraceRecord& r, PacketState& ps) {
  const policy::FunctionId fn{static_cast<std::uint8_t>(r.detail)};
  if (ps.boxes.empty() || ps.boxes.back() != r.node) ps.boxes.push_back(r.node);
  ps.applied.push_back(fn);

  // Invariant 1a: functions are applied by deployed implementers only.
  const policy::FunctionSet* fns = box_functions(r.node);
  if (fns == nullptr || !fns->contains(fn)) {
    if (!ps.violated) {
      violation(ViolationKind::kUnexpectedFunction, ps, r.at,
                "function " + function_name(fn) + " applied at " + node_name(r.node) +
                    ", which does not implement it");
      ps.violated = true;
      ++report_.packets_violating;
    }
    return;
  }

  // Invariant 1b: policy order. Checked against the datapath's committed
  // policy; the ground-truth cross-check happens at delivery.
  FlowState& fs = flow_state(ps.key.flow);
  const policy::Policy* pol = committed_policy(fs);
  if (pol == nullptr || ps.violated) return;
  if (ps.visited < pol->actions.size() && pol->actions[ps.visited] == fn) {
    ++ps.visited;
    return;
  }
  const bool in_chain =
      std::find(pol->actions.begin(), pol->actions.end(), fn) != pol->actions.end();
  const char* what = in_chain ? "out of policy order" : "not in the policy chain";
  violation(in_chain ? ViolationKind::kReorderedChain : ViolationKind::kUnexpectedFunction, ps,
            r.at,
            "policy " + std::to_string(pol->id.v) + " (" + describe_chain(*pol) +
                ") expected " +
                (ps.visited < pol->actions.size() ? function_name(pol->actions[ps.visited])
                                                  : std::string("chain tail")) +
                " next, but " + node_name(r.node) + " applied " + function_name(fn) + " (" +
                what + ")");
  ps.violated = true;
  ++report_.packets_violating;
}

void InvariantOracle::handle_chain_tail(const obs::TraceRecord& r, PacketState& ps) {
  ps.chain_tail = true;
  if (ps.mode != Mode::kTunneled || ps.violated || ps.unverified) return;
  FlowState& fs = flow_state(ps.key.flow);
  const policy::Policy* pol = committed_policy(fs);
  if (pol == nullptr || ps.applied.size() != pol->actions.size() ||
      ps.visited != pol->actions.size()) {
    return;
  }
  // A complete, in-order tunneled traversal: this box sequence is what the
  // flow's label path must reproduce (invariant 3). Several sequences per
  // epoch are legal — failover mid-establishment installs more than one.
  if (fs.established.size() <= fs.epoch) fs.established.resize(fs.epoch + 1);
  auto& paths = fs.established[fs.epoch];
  if (std::find(paths.begin(), paths.end(), ps.boxes) == paths.end()) {
    paths.push_back(ps.boxes);
  }
  (void)r;
}

void InvariantOracle::note_delivered_ok() {
  ++report_.packets_delivered_ok;
  if (spans_ == nullptr) return;
  // Attribute the delivery to the transient window it rode through, if any:
  // a replan still rolling out is the concrete unenforced window the PR-6
  // oracle merely tolerated; failing that, an open unenforced fault episode
  // (crash detected but recovery not yet begun).
  obs::SpanId target = spans_->latest_open("replan");
  if (target == 0) {
    const obs::SpanId episode = spans_->latest_open("episode");
    if (episode != 0) {
      const obs::Span* e = spans_->find(episode);
      if (e != nullptr && e->attr_or("unenforced") == 1) target = episode;
    }
  }
  if (target == 0) return;
  ++report_.packets_in_unenforced_window;
  spans_->add_attr(target, "packets_in_window", 1);
}

void InvariantOracle::handle_delivered(const obs::TraceRecord& r, PacketState& ps) {
  FlowState& fs = flow_state(ps.key.flow);
  if (!fs.touched_proxy) {
    // Control/cross traffic that never crossed a policy proxy (controller
    // pushes, heartbeats, management flows): out of the oracle's scope.
    ++report_.packets_delivered_ok;
    return;
  }
  // Policy traffic consumed somewhere other than its destination is an
  // anomaly sink (misdirected packets are swallowed, not forwarded):
  // accounted, and never a completed delivery.
  if (!at_destination(r.node, ps.key.flow)) {
    ps.anomaly = true;
    ++report_.packets_anomaly_sunk;
    return;
  }
  if (ps.unverified) {
    ++report_.packets_unverified;
    return;
  }

  // Invariant 2 uses the oracle's own ground truth — the full policy list,
  // not any device's possibly-stale slice.
  const policy::Policy* gt = policies_->first_match(ps.key.flow);
  const policy::Policy* pol = committed_policy(fs);
  if (pol != nullptr && gt != nullptr && pol->id != gt->id) ++report_.policy_conflicts;

  if (gt != nullptr && gt->deny) {
    if (!ps.violated) {
      violation(ViolationKind::kDeliveredWithoutChain, ps, r.at,
                "policy " + std::to_string(gt->id.v) +
                    " denies this flow, yet the packet was delivered at " + node_name(r.node));
      ps.violated = true;
      ++report_.packets_violating;
    }
    return;
  }
  const policy::ActionList& required = gt != nullptr ? gt->actions : policy::ActionList{};
  if (required.empty()) {
    note_delivered_ok();
    return;
  }
  if (ps.violated) return;  // already reported upstream; don't cascade

  const std::string chain = describe_chain(*gt);
  switch (ps.mode) {
    case Mode::kOpen:
    case Mode::kPlain:
    case Mode::kDenied: {
      violation(ViolationKind::kDeliveredWithoutChain, ps, r.at,
                "policy " + std::to_string(gt->id.v) + " requires chain " + chain +
                    ", but the packet reached " + node_name(r.node) +
                    " with no enforcement at all");
      ps.violated = true;
      ++report_.packets_violating;
      return;
    }
    case Mode::kTunneled: {
      if (ps.applied == required) {
        note_delivered_ok();
        return;
      }
      if (ps.applied.empty()) {
        violation(ViolationKind::kDeliveredWithoutChain, ps, r.at,
                  "policy " + std::to_string(gt->id.v) + " requires chain " + chain +
                      ", but the tunneled packet reached " + node_name(r.node) +
                      " with no function applied");
      } else {
        std::string missing;
        for (std::size_t i = ps.visited; i < required.size(); ++i) {
          if (!missing.empty()) missing += ", ";
          missing += function_name(required[i]);
        }
        violation(ViolationKind::kSkippedFunction, ps, r.at,
                  "policy " + std::to_string(gt->id.v) + " requires chain " + chain +
                      ", but the packet was delivered with [" +
                      (missing.empty() ? "chain content mismatch" : missing) + "] unvisited");
      }
      ps.violated = true;
      ++report_.packets_violating;
      return;
    }
    case Mode::kSwitched: {
      if (!ps.chain_tail) {
        violation(ViolationKind::kDeliveredWithoutChain, ps, r.at,
                  "policy " + std::to_string(gt->id.v) + " requires chain " + chain +
                      ", but the switched packet reached " + node_name(r.node) +
                      " without traversing a chain tail");
        ps.violated = true;
        ++report_.packets_violating;
        return;
      }
      const auto* paths = ps.path_epoch < fs.established.size()
                              ? &fs.established[ps.path_epoch]
                              : nullptr;
      if (paths == nullptr || paths->empty()) {
        const bool after_teardown = ps.path_epoch > 0 && fs.torn_at >= 0;
        violation(after_teardown ? ViolationKind::kPostTeardownLabelUse
                                 : ViolationKind::kLabelPathDivergence,
                  ps, r.at,
                  after_teardown
                      ? ("label " + std::to_string(ps.label) +
                         " was used after teardown (t=" + fmt_time(fs.torn_at) +
                         ") without a tunneled packet re-establishing the chain")
                      : ("switched packet followed label " + std::to_string(ps.label) +
                         " but the flow never established a tunneled chain path"));
        ps.violated = true;
        ++report_.packets_violating;
        return;
      }
      const bool matched =
          complete_stream_
              ? std::find(paths->begin(), paths->end(), ps.boxes) != paths->end()
              : std::any_of(paths->begin(), paths->end(),
                            [&](const std::vector<net::NodeId>& p) {
                              return !p.empty() && !ps.boxes.empty() &&
                                     p.back() == ps.boxes.back() &&
                                     subsequence_of(ps.boxes, p);
                            });
      if (!matched) {
        std::string observed;
        for (std::size_t i = 0; i < ps.boxes.size(); ++i) {
          if (i) observed += "->";
          observed += node_name(ps.boxes[i]);
        }
        std::string expect;
        for (std::size_t i = 0; i < paths->size(); ++i) {
          if (i) expect += " | ";
          for (std::size_t j = 0; j < (*paths)[i].size(); ++j) {
            if (j) expect += "->";
            expect += node_name((*paths)[i][j]);
          }
        }
        violation(ViolationKind::kLabelPathDivergence, ps, r.at,
                  "label " + std::to_string(ps.label) + " path visited [" + observed +
                      "] but the flow's tunneled packets established [" + expect + "]");
        ps.violated = true;
        ++report_.packets_violating;
        return;
      }
      note_delivered_ok();
      return;
    }
  }
}

void InvariantOracle::finalize(PacketState& ps) {
  if (ps.has_alias) {
    PacketKey alias = ps.key;
    alias.flow.dst = net::IpAddress{};
    aliases_.erase(alias);
  }
  packets_.erase(ps.key);  // ps dangles after this line
}

void InvariantOracle::on_record(const obs::TraceRecord& r) {
  if (finished_) return;
  ++report_.records_seen;
  using obs::Hop;

  if (r.hop == Hop::kLabelTeardown) {
    handle_teardown(r);
    return;
  }
  if (r.hop == Hop::kInjected) {
    const PacketKey key{r.flow, r.seq};
    auto [it, inserted] = packets_.try_emplace(key);
    if (!inserted) {
      // Same (flow, seq) injected twice: the old packet's fate is unknowable.
      ++report_.packets_in_flight;
      it->second = PacketState{};
    }
    ++report_.packets_tracked;
    PacketState& ps = it->second;
    ps.key = key;
    ps.history.push_back(r);
    return;
  }

  PacketState* psp = find_packet(r);
  if (psp == nullptr) {
    ++report_.untracked_records;
    return;
  }
  PacketState& ps = *psp;
  if (ps.history.size() < kHistoryCap) ps.history.push_back(r);

  bool terminal = false;
  switch (r.hop) {
    case Hop::kClassified:
      handle_classified(r, flow_state(ps.key.flow));
      break;
    case Hop::kCacheHit:
    case Hop::kCacheMiss:
      if (is_proxy(r.node)) flow_state(ps.key.flow).touched_proxy = true;
      break;
    case Hop::kDenied: {
      FlowState& fs = flow_state(ps.key.flow);
      fs.touched_proxy = true;
      if (!fs.policy_known) {
        fs.policy = policy::PolicyId{static_cast<std::uint32_t>(r.detail)};
        fs.policy_known = true;
      }
      ps.mode = Mode::kDenied;
      ++report_.packets_denied;
      terminal = true;
      break;
    }
    case Hop::kPermitted:
      flow_state(ps.key.flow).touched_proxy = true;
      if (ps.mode == Mode::kOpen) ps.mode = Mode::kPlain;
      break;
    case Hop::kTunnelEncap:
      if (is_proxy(r.node) && ps.mode == Mode::kOpen) {
        FlowState& fs = flow_state(ps.key.flow);
        fs.touched_proxy = true;
        if (!fs.policy_known && fs.has_candidate) {
          fs.policy = policy::PolicyId{static_cast<std::uint32_t>(fs.candidate)};
          fs.policy_known = true;
        }
        ps.mode = Mode::kTunneled;
      }
      break;
    case Hop::kTunnelDecap:
      if (ps.mode == Mode::kOpen) ps.mode = Mode::kTunneled;
      break;
    case Hop::kFunctionApplied:
      handle_function(r, ps);
      break;
    case Hop::kLabelSwitchTx:
      if (is_proxy(r.node) && ps.mode == Mode::kOpen) {
        FlowState& fs = flow_state(ps.key.flow);
        fs.touched_proxy = true;
        if (!fs.policy_known && fs.has_candidate) {
          fs.policy = policy::PolicyId{static_cast<std::uint32_t>(fs.candidate)};
          fs.policy_known = true;
        }
        ps.mode = Mode::kSwitched;
        ps.label = static_cast<std::uint16_t>(r.detail);
        ps.path_epoch = fs.epoch;
        // Register the destination-agnostic alias for mid-chain records.
        PacketKey alias = ps.key;
        alias.flow.dst = net::IpAddress{};
        const auto [it, inserted] = aliases_.try_emplace(alias, ps.key);
        if (!inserted && !(it->second == ps.key)) {
          // Two in-flight switched packets share everything but the
          // destination: neither can be attributed mid-chain. Flag both —
          // counted, never silently excused.
          if (const auto oit = packets_.find(it->second); oit != packets_.end()) {
            oit->second.unverified = true;
          }
          ps.unverified = true;
        } else {
          ps.has_alias = true;
        }
      }
      break;
    case Hop::kLabelSwitchRx:
      if (ps.boxes.empty() || ps.boxes.back() != r.node) ps.boxes.push_back(r.node);
      break;
    case Hop::kChainTail:
      handle_chain_tail(r, ps);
      break;
    case Hop::kWpCacheResponse:
      // §III.F legal truncation: the chain's web proxy answered from cache.
      ++report_.packets_wp_served;
      terminal = true;
      break;
    case Hop::kFailoverReroute:
      break;
    case Hop::kAnomaly:
      ps.anomaly = true;
      break;
    case Hop::kDelivered:
      handle_delivered(r, ps);
      terminal = true;
      break;
    case Hop::kDropNodeDown:
    case Hop::kDropNoRoute:
    case Hop::kDropTtl:
    case Hop::kDropQueue:
    case Hop::kDropLinkDown:
    case Hop::kDropLinkLoss:
      // Legitimate in-flight loss under faults: accounted explicitly.
      ++report_.packets_dropped;
      terminal = true;
      break;
    case Hop::kInjected:
    case Hop::kLabelTeardown:
      break;  // handled above
  }
  if (terminal) finalize(ps);
}

void InvariantOracle::replay(const obs::TraceSink& sink) {
  for (const obs::TraceRecord& r : sink.records()) on_record(r);
  if (sink.dropped() > 0) {
    report_.coverage_complete = false;
    report_.coverage_note = "trace ring shed " + std::to_string(sink.dropped()) +
                            " record(s); post-hoc verification cannot vouch for the missing "
                            "history (attach the oracle live, or grow the ring)";
  }
}

const VerifyReport& InvariantOracle::finish() {
  if (finished_) return report_;
  finished_ = true;
  if (report_.records_seen == 0) {
    // Zero records means zero verification, not a clean pass: the sampler
    // may have rejected every flow (tiny trace rate), or the oracle was
    // never attached to a live stream.
    report_.coverage_complete = false;
    report_.coverage_note =
        "no trace records reached the oracle — nothing was verified (raise the "
        "trace sample rate or attach the oracle to a live tracer)";
  }
  // Open packets are unfinished business, not violations: their terminal
  // record never arrived (in flight at end of run, or silently consumed
  // after an anomaly). Counted so nothing is silently excused.
  for (const auto& [key, ps] : packets_) {
    if (ps.anomaly) {
      ++report_.packets_dropped;
    } else {
      ++report_.packets_in_flight;
    }
  }
  return report_;
}

void InvariantOracle::register_metrics(obs::MetricsRegistry& registry) const {
  const obs::Labels base{{"subsystem", "verify"}};
  registry.expose_counter("verify_records_seen", base, &report_.records_seen);
  registry.expose_counter("verify_packets_tracked", base, &report_.packets_tracked);
  registry.expose_counter("verify_packets_delivered_ok", base, &report_.packets_delivered_ok);
  registry.expose_counter("verify_packets_denied", base, &report_.packets_denied);
  registry.expose_counter("verify_packets_dropped", base, &report_.packets_dropped);
  registry.expose_counter("verify_packets_wp_served", base, &report_.packets_wp_served);
  registry.expose_counter("verify_packets_anomaly_sunk", base, &report_.packets_anomaly_sunk);
  registry.expose_counter("verify_packets_in_flight", base, &report_.packets_in_flight);
  registry.expose_counter("verify_packets_violating", base, &report_.packets_violating);
  registry.expose_counter("verify_packets_unverified", base, &report_.packets_unverified);
  registry.expose_counter("verify_untracked_records", base, &report_.untracked_records);
  registry.expose_counter("verify_teardown_notices", base, &report_.teardown_notices);
  registry.expose_counter("verify_policy_conflicts", base, &report_.policy_conflicts);
  for (std::size_t i = 0; i < kViolationKindCount; ++i) {
    obs::Labels labels = base;
    labels.set("class", to_string(static_cast<ViolationKind>(i)));
    registry.expose_counter("verify_violations", labels, &violation_counts_[i]);
  }
  registry.expose_gauge("verify_coverage_incomplete", base,
                        [this] { return report_.coverage_complete ? 0.0 : 1.0; });
  // conv_* series exist only when the span machinery is attached, so a
  // verified-but-unspanned run's metrics dump is unchanged.
  if (spans_ != nullptr) {
    registry.expose_counter("conv_unenforced_window_packets", base,
                            &report_.packets_in_unenforced_window);
  }
}

}  // namespace sdmbox::verify
