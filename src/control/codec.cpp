#include "control/codec.hpp"

#include "control/wire.hpp"

namespace sdmbox::control {

namespace {
constexpr std::uint16_t kConfigMagic = 0x5dc0;  // SDm-Config
constexpr std::uint16_t kReportMagic = 0x5d20;  // SDm-Report
}  // namespace

std::vector<std::uint8_t> encode_device_config(const core::DeviceConfig& config) {
  ByteWriter w;
  w.u16(kConfigMagic);
  w.u8(static_cast<std::uint8_t>(config.strategy));
  w.u64(config.version);
  w.u32(config.node.node.v);
  w.u8(config.node.is_proxy ? 1 : 0);
  // own functions as a bitmask
  std::uint64_t own = 0;
  for (const policy::FunctionId e : config.node.own_functions.to_vector()) {
    own |= std::uint64_t{1} << e.v;
  }
  w.u64(own);
  // relevant policies
  w.u32(static_cast<std::uint32_t>(config.node.relevant_policies.size()));
  for (const policy::PolicyId id : config.node.relevant_policies) w.u32(id.v);
  // candidate sets: count of non-empty functions, then per function
  std::uint8_t non_empty = 0;
  for (const auto& cands : config.node.candidates) non_empty += !cands.empty();
  w.u8(non_empty);
  for (std::uint8_t ev = 0; ev < policy::kMaxFunctions; ++ev) {
    const auto& cands = config.node.candidates[ev];
    if (cands.empty()) continue;
    w.u8(ev);
    w.u16(static_cast<std::uint16_t>(cands.size()));
    for (const net::NodeId c : cands) w.u32(c.v);
  }
  // ratio slice: aggregate (Eq. 2) then detailed (Eq. 1) entries
  w.u32(static_cast<std::uint32_t>(config.ratios.size()));
  config.ratios.for_each([&](net::NodeId from, policy::FunctionId e, policy::PolicyId p,
                             const std::vector<core::SplitRatioTable::Share>& shares) {
    (void)from;  // always this device
    w.u8(e.v);
    w.u32(p.v);
    w.u16(static_cast<std::uint16_t>(shares.size()));
    for (const auto& s : shares) {
      w.u32(s.to.v);
      w.f64(s.weight);
    }
  });
  w.u32(static_cast<std::uint32_t>(config.ratios.detailed_size()));
  config.ratios.for_each_detailed(
      [&](net::NodeId from, policy::FunctionId e, policy::PolicyId p, int s, int d,
          const std::vector<core::SplitRatioTable::Share>& shares) {
        (void)from;
        w.u8(e.v);
        w.u32(p.v);
        w.u32(static_cast<std::uint32_t>(s));
        w.u32(static_cast<std::uint32_t>(d));
        w.u16(static_cast<std::uint16_t>(shares.size()));
        for (const auto& share : shares) {
          w.u32(share.to.v);
          w.f64(share.weight);
        }
      });
  return w.take();
}

std::optional<core::DeviceConfig> decode_device_config(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.u16() != kConfigMagic) return std::nullopt;
  core::DeviceConfig cfg;
  const std::uint8_t strategy = r.u8();
  if (strategy > static_cast<std::uint8_t>(core::StrategyKind::kLoadBalanced)) {
    return std::nullopt;
  }
  cfg.strategy = static_cast<core::StrategyKind>(strategy);
  cfg.version = r.u64();
  cfg.node.node = net::NodeId{r.u32()};
  cfg.node.is_proxy = r.u8() != 0;
  const std::uint64_t own = r.u64();
  for (std::uint8_t ev = 0; ev < policy::kMaxFunctions; ++ev) {
    if ((own >> ev) & 1) cfg.node.own_functions.insert(policy::FunctionId{ev});
  }
  const std::uint32_t n_policies = r.u32();
  if (!r.ok() || n_policies > 1'000'000) return std::nullopt;
  cfg.node.relevant_policies.reserve(n_policies);
  for (std::uint32_t i = 0; i < n_policies && r.ok(); ++i) {
    cfg.node.relevant_policies.push_back(policy::PolicyId{r.u32()});
  }
  const std::uint8_t non_empty = r.u8();
  for (std::uint8_t i = 0; i < non_empty && r.ok(); ++i) {
    const std::uint8_t ev = r.u8();
    if (ev >= policy::kMaxFunctions) return std::nullopt;
    const std::uint16_t count = r.u16();
    auto& cands = cfg.node.candidates[ev];
    cands.reserve(count);
    for (std::uint16_t c = 0; c < count && r.ok(); ++c) cands.push_back(net::NodeId{r.u32()});
  }
  const std::uint32_t n_ratios = r.u32();
  if (!r.ok() || n_ratios > 10'000'000) return std::nullopt;
  for (std::uint32_t i = 0; i < n_ratios && r.ok(); ++i) {
    const policy::FunctionId e{r.u8()};
    const policy::PolicyId p{r.u32()};
    const std::uint16_t n_shares = r.u16();
    std::vector<core::SplitRatioTable::Share> shares;
    shares.reserve(n_shares);
    for (std::uint16_t s = 0; s < n_shares && r.ok(); ++s) {
      const net::NodeId to{r.u32()};
      const double weight = r.f64();
      if (weight < 0) return std::nullopt;
      shares.push_back(core::SplitRatioTable::Share{to, weight});
    }
    if (r.ok()) cfg.ratios.set(cfg.node.node, e, p, std::move(shares));
  }
  const std::uint32_t n_detailed = r.u32();
  if (!r.ok() || n_detailed > 10'000'000) return std::nullopt;
  for (std::uint32_t i = 0; i < n_detailed && r.ok(); ++i) {
    const policy::FunctionId e{r.u8()};
    const policy::PolicyId p{r.u32()};
    const int s = static_cast<std::int32_t>(r.u32());
    const int d = static_cast<std::int32_t>(r.u32());
    const std::uint16_t n_shares = r.u16();
    std::vector<core::SplitRatioTable::Share> shares;
    shares.reserve(n_shares);
    for (std::uint16_t k = 0; k < n_shares && r.ok(); ++k) {
      const net::NodeId to{r.u32()};
      const double weight = r.f64();
      if (weight < 0) return std::nullopt;
      shares.push_back(core::SplitRatioTable::Share{to, weight});
    }
    if (r.ok()) cfg.ratios.set_detailed(cfg.node.node, e, p, s, d, std::move(shares));
  }
  if (!r.done()) return std::nullopt;
  return cfg;
}

std::vector<std::uint8_t> encode_measurement_report(const MeasurementReport& report) {
  ByteWriter w;
  w.u16(kReportMagic);
  w.u32(static_cast<std::uint32_t>(report.src_subnet));
  w.u32(static_cast<std::uint32_t>(report.lines.size()));
  for (const auto& line : report.lines) {
    w.u32(line.policy);
    w.u32(static_cast<std::uint32_t>(line.dst_subnet));
    w.u64(line.packets);
  }
  return w.take();
}

std::optional<MeasurementReport> decode_measurement_report(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  if (r.u16() != kReportMagic) return std::nullopt;
  MeasurementReport report;
  report.src_subnet = static_cast<std::int32_t>(r.u32());
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > 10'000'000) return std::nullopt;
  report.lines.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    MeasurementReport::Line line;
    line.policy = r.u32();
    line.dst_subnet = static_cast<std::int32_t>(r.u32());
    line.packets = r.u64();
    report.lines.push_back(line);
  }
  if (!r.done()) return std::nullopt;
  return report;
}

}  // namespace sdmbox::control
