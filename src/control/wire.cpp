#include "control/wire.hpp"

#include <cstring>

namespace sdmbox::control {

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

std::uint8_t ByteReader::u8() {
  if (!take(1)) return 0;
  return bytes_[pos_++];
}

std::uint16_t ByteReader::u16() {
  const std::uint16_t lo = u8();
  const std::uint16_t hi = u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t ByteReader::u32() {
  const std::uint32_t lo = u16();
  const std::uint32_t hi = u16();
  return lo | (hi << 16);
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return ok_ ? v : 0.0;
}

std::string ByteReader::str() {
  const std::uint32_t len = u32();
  if (!take(len)) return {};
  std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
  pos_ += len;
  return out;
}

}  // namespace sdmbox::control
