#include "control/reoptimize.hpp"

#include <chrono>
#include <cmath>
#include <numeric>

#include "util/log.hpp"

namespace sdmbox::control {

namespace {

std::vector<double> normalize(const std::vector<double>& raw) {
  const double total = std::accumulate(raw.begin(), raw.end(), 0.0);
  std::vector<double> shares(raw.size(), 0.0);
  if (total <= 0) return shares;
  for (std::size_t i = 0; i < raw.size(); ++i) shares[i] = raw[i] / total;
  return shares;
}

}  // namespace

const char* to_string(DriftDetector::Decision d) noexcept {
  switch (d) {
    case DriftDetector::Decision::kSeeded: return "seeded";
    case DriftDetector::Decision::kTrigger: return "trigger";
    case DriftDetector::Decision::kTriggerPredicted: return "trigger-predicted";
    case DriftDetector::Decision::kBelowThreshold: return "below-threshold";
    case DriftDetector::Decision::kCooldown: return "cooldown";
    case DriftDetector::Decision::kTooFewReports: return "too-few-reports";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// DriftDetector
// ---------------------------------------------------------------------------

DriftDetector::DriftDetector(double threshold, int cooldown_epochs, std::uint64_t min_reports)
    : DriftDetector([&] {
        ReoptimizeOptions o;
        o.drift_threshold = threshold;
        o.cooldown_epochs = cooldown_epochs;
        o.min_reports = min_reports;
        return o;
      }()) {}

DriftDetector::DriftDetector(const ReoptimizeOptions& options) : opt_(options) {
  SDM_CHECK_MSG(opt_.drift_threshold >= 0 && opt_.drift_threshold <= 1,
                "drift threshold must be in [0, 1]");
  SDM_CHECK_MSG(opt_.cooldown_epochs >= 1, "cooldown must be at least 1 epoch");
  SDM_CHECK_MSG(opt_.noise_multiplier >= 0, "noise multiplier must be non-negative");
  effective_threshold_ = opt_.drift_threshold;
}

double DriftDetector::drift(const std::vector<double>& reference,
                            const std::vector<double>& observed) {
  SDM_CHECK_MSG(reference.size() == observed.size(),
                "drift needs load vectors over the same middlebox set");
  const double ref_total = std::accumulate(reference.begin(), reference.end(), 0.0);
  const double obs_total = std::accumulate(observed.begin(), observed.end(), 0.0);
  if (ref_total <= 0 || obs_total <= 0) return (ref_total <= 0) == (obs_total <= 0) ? 0.0 : 1.0;
  double tv = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    tv += std::abs(reference[i] / ref_total - observed[i] / obs_total);
  }
  return 0.5 * tv;
}

double DriftDetector::drift_grouped(const std::vector<double>& reference,
                                    const std::vector<double>& observed) const {
  double d = drift(reference, observed);
  std::vector<double> ref_g;
  std::vector<double> obs_g;
  for (const std::vector<std::size_t>& g : groups_) {
    ref_g.clear();
    obs_g.clear();
    for (const std::size_t i : g) {
      if (i >= reference.size()) continue;
      ref_g.push_back(reference[i]);
      obs_g.push_back(observed[i]);
    }
    // drift() renormalizes each sub-vector by its own total, so this is the
    // TV distance of the load distribution WITHIN one function's
    // implementers — a shift confined there can't hide in the global sum.
    d = std::max(d, drift(ref_g, obs_g));
  }
  return d;
}

void DriftDetector::update_noise(const std::vector<double>& shares) {
  if (share_mean_.size() != shares.size()) {
    share_mean_.assign(shares.size(), 0.0);
    share_m2_.assign(shares.size(), 0.0);
    share_samples_ = 0;
  }
  ++share_samples_;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    const double delta = shares[i] - share_mean_[i];
    share_mean_[i] += delta / static_cast<double>(share_samples_);
    share_m2_[i] += delta * (shares[i] - share_mean_[i]);
  }
}

double DriftDetector::share_noise() const noexcept {
  if (share_samples_ < 2) return 0;
  double sum = 0;
  for (const double m2 : share_m2_) {
    sum += std::sqrt(std::max(0.0, m2) / static_cast<double>(share_samples_ - 1));
  }
  return 0.5 * sum;
}

DriftDetector::Decision DriftDetector::evaluate(const std::vector<double>& observed,
                                                std::uint64_t pending_reports) {
  ++epochs_since_solve_;
  if (pending_reports < opt_.min_reports) return Decision::kTooFewReports;
  const double total = std::accumulate(observed.begin(), observed.end(), 0.0);
  if (total <= 0) {
    // No load observed at all: nothing to compare (and nothing worth
    // re-balancing). Never seed the reference from silence.
    last_drift_ = 0;
    last_predicted_drift_ = 0;
    return Decision::kBelowThreshold;
  }
  const std::vector<double> shares = normalize(observed);
  update_noise(shares);
  effective_threshold_ = opt_.drift_threshold;
  if (opt_.adaptive) {
    effective_threshold_ = std::max(opt_.drift_threshold, opt_.noise_multiplier * share_noise());
  }
  if (!has_reference_) {
    // Observe-first: the first usable window defines what the current plan
    // serves; drift is measured against it from the next epoch on.
    reference_ = shares;
    has_reference_ = true;
    last_drift_ = 0;
    last_predicted_drift_ = 0;
    prev_shares_ = shares;
    return Decision::kSeeded;
  }
  SDM_CHECK_MSG(observed.size() == reference_.size(),
                "drift needs load vectors over the same middlebox set");
  last_drift_ = drift_grouped(reference_, observed);
  // One-epoch-ahead linear extrapolation of the share vector: where the
  // distribution will be if the current trend holds for one more epoch.
  last_predicted_drift_ = 0;
  if (opt_.predictive && prev_shares_.size() == shares.size()) {
    std::vector<double> predicted(shares.size());
    for (std::size_t i = 0; i < shares.size(); ++i) {
      predicted[i] = std::max(0.0, 2 * shares[i] - prev_shares_[i]);
    }
    last_predicted_drift_ = drift_grouped(reference_, predicted);
  }
  prev_shares_ = shares;
  if (epochs_since_solve_ < opt_.cooldown_epochs) return Decision::kCooldown;
  if (last_drift_ > effective_threshold_) return Decision::kTrigger;
  if (opt_.predictive && last_predicted_drift_ > effective_threshold_) {
    return Decision::kTriggerPredicted;
  }
  return Decision::kBelowThreshold;
}

void DriftDetector::mark_solved(const std::vector<double>& observed) {
  reference_ = normalize(observed);
  has_reference_ = true;
  // The trend restarts at the new reference: the measurement window is
  // re-based after a solve, so yesterday's shares no longer extrapolate.
  prev_shares_ = reference_;
  epochs_since_solve_ = 0;
}

// ---------------------------------------------------------------------------
// ReoptimizePolicy
// ---------------------------------------------------------------------------

ReoptimizePolicy::ReoptimizePolicy(ControllerAgent& agent, const ControlPlane& plane,
                                   const obs::EpochRecorder& recorder, ReoptimizeOptions params)
    : agent_(agent),
      proxies_(plane.proxies),
      middleboxes_(plane.middleboxes),
      recorder_(recorder),
      params_(params),
      detector_(params) {
  SDM_CHECK_MSG(params_.epoch_period > 0, "re-optimisation epoch period must be positive");
  SDM_CHECK_MSG(!middleboxes_.empty(), "the loop needs middleboxes to watch");
  base_.assign(middleboxes_.size(), 0.0);
  // Per-function drift groups: plane.middleboxes parallels the deployment's
  // middlebox order, which is also the order cumulative_loads() reads, so
  // index i in the observed vector IS deployment middlebox i. Groups that
  // span the whole deployment duplicate the global drift and are skipped.
  const core::Deployment& dep = agent_.controller().deployment();
  SDM_CHECK_MSG(dep.middleboxes().size() == middleboxes_.size(),
                "control plane and deployment disagree on the middlebox set");
  std::vector<std::vector<std::size_t>> groups;
  for (const policy::FunctionId e : dep.all_functions().to_vector()) {
    std::vector<std::size_t> g;
    for (std::size_t i = 0; i < dep.middleboxes().size(); ++i) {
      if (dep.middleboxes()[i].functions.contains(e)) g.push_back(i);
    }
    if (!g.empty() && g.size() < dep.middleboxes().size()) groups.push_back(std::move(g));
  }
  detector_.set_groups(std::move(groups));
}

void ReoptimizePolicy::start(sim::SimNetwork& net) {
  if (running()) return;
  periodic_ = net.simulator().schedule_every(params_.epoch_period, [this, &net] { epoch(net); });
}

void ReoptimizePolicy::stop() noexcept {
  if (periodic_ != nullptr) periodic_->cancel();
}

std::vector<double> ReoptimizePolicy::cumulative_loads() const {
  std::vector<double> cum(middleboxes_.size(), 0.0);
  for (std::size_t i = 0; i < middleboxes_.size(); ++i) {
    const obs::Labels labels{{"device", middleboxes_[i]->middlebox()->name()},
                             {"subsystem", "middlebox"}};
    cum[i] = recorder_.latest("mbx_processed_packets", labels).value_or(0.0);
  }
  return cum;
}

void ReoptimizePolicy::epoch(sim::SimNetwork& net) {
  ++counters_.epochs;
  const std::vector<double> cum = cumulative_loads();
  std::vector<double> window(cum.size());
  for (std::size_t i = 0; i < cum.size(); ++i) window[i] = cum[i] - base_[i];

  DriftDetector::Decision decision = detector_.evaluate(window, agent_.pending_reports());
  const bool predicted = decision == DriftDetector::Decision::kTriggerPredicted;
  if (decision == DriftDetector::Decision::kTrigger || predicted) {
    // The drift trigger roots this episode's trace tree, exactly like a
    // crash roots a failure episode: the replan span below becomes its
    // child via the context stack. Drift never leaves the network
    // unenforced — the old plan keeps enforcing while the new one rolls out.
    obs::SpanId episode = 0;
    if (spans_ != nullptr) {
      episode = spans_->begin("episode:drift", net.simulator().now(), 0, "", "reoptimize");
      spans_->set_attr(episode, "drift", detector_.last_drift());
      spans_->set_attr(episode, "threshold", detector_.effective_threshold());
      if (predicted) {
        spans_->set_attr(episode, "predicted_drift", detector_.last_predicted_drift());
      }
      spans_->set_attr(episode, "unenforced", 0);
      spans_->push_context(episode);
    }
    ReplanRequest request;
    request.trigger = ReplanTrigger::kDrift;
    const ReplanOutcome outcome = agent_.replan(net, request);
    if (episode != 0) spans_->pop_context();
    if (outcome.suppressed) {
      // The report pool emptied between the gate and the solve (cannot
      // happen from this loop, but replan() owns the final word).
      ++counters_.suppressed;
      ++counters_.suppressed_reports;
      decision = DriftDetector::Decision::kTooFewReports;
      if (episode != 0) {
        spans_->set_attr(episode, "suppressed", 1);
        spans_->end(episode, net.simulator().now());
      }
    } else {
      ++counters_.triggered;
      if (predicted) ++counters_.triggered_predicted;
      ++counters_.solves;
      counters_.solve_pivots += outcome.lp_pivots;
      if (outcome.lp_warm_started) ++counters_.solve_warm_starts;
      counters_.pushes += outcome.pushes_sent;
      counters_.push_bytes += outcome.push_bytes;
      solve_ms_wall_ += outcome.solve_ms;
      solve_ms_modeled_ += modeled_solve_ms(outcome.lp_pivots);
      detector_.mark_solved(window);
      base_ = cum;
      SDM_LOG_INFO("reopt", (predicted ? "predicted drift " : "drift ")
                                << (predicted ? detector_.last_predicted_drift()
                                              : detector_.last_drift())
                                << " > " << detector_.effective_threshold()
                                << ": re-solved (λ = " << outcome.lambda << ", "
                                << outcome.pushes_sent << " pushes)");
    }
  } else if (decision == DriftDetector::Decision::kSeeded) {
    // The reference window is consumed: measure future windows from here.
    base_ = cum;
  } else {
    ++counters_.suppressed;
    switch (decision) {
      case DriftDetector::Decision::kBelowThreshold: ++counters_.suppressed_drift; break;
      case DriftDetector::Decision::kCooldown: ++counters_.suppressed_cooldown; break;
      case DriftDetector::Decision::kTooFewReports: ++counters_.suppressed_reports; break;
      default: break;
    }
  }
  log_.push_back(Event{counters_.epochs, net.simulator().now(), decision, detector_.last_drift()});

  if (params_.request_reports) {
    for (ManagedDevice* proxy : proxies_) proxy->send_report(net, agent_.address());
  }
}

void ReoptimizePolicy::register_metrics(obs::MetricsRegistry& registry) const {
  const obs::Labels labels{{"subsystem", "reoptimize"}};
  registry.expose_counter("reopt_epochs", labels, &counters_.epochs);
  registry.expose_counter("reopt_triggered", labels, &counters_.triggered);
  registry.expose_counter("reopt_triggered_predicted", labels, &counters_.triggered_predicted);
  registry.expose_counter("reopt_suppressed", labels, &counters_.suppressed);
  registry.expose_counter("reopt_suppressed_drift", labels, &counters_.suppressed_drift);
  registry.expose_counter("reopt_suppressed_cooldown", labels, &counters_.suppressed_cooldown);
  registry.expose_counter("reopt_suppressed_reports", labels, &counters_.suppressed_reports);
  registry.expose_counter("reopt_solves", labels, &counters_.solves);
  registry.expose_counter("reopt_solve_pivots", labels, &counters_.solve_pivots);
  registry.expose_counter("reopt_solve_warm_starts", labels, &counters_.solve_warm_starts);
  registry.expose_counter("reopt_pushes", labels, &counters_.pushes);
  registry.expose_counter("reopt_push_bytes", labels, &counters_.push_bytes);
  // Modeled (pivot-derived), NOT wall time: keeps same-seed exports
  // byte-identical. solve_ms_wall() has the measured number.
  registry.expose_gauge("reopt_solve_ms", labels, [this] { return solve_ms_modeled_; });
  registry.expose_gauge("reopt_last_drift", labels, [this] { return detector_.last_drift(); });
  registry.expose_gauge("reopt_effective_threshold", labels,
                        [this] { return detector_.effective_threshold(); });
}

}  // namespace sdmbox::control
