#include "control/reoptimize.hpp"

#include <chrono>
#include <cmath>
#include <numeric>

#include "util/log.hpp"

namespace sdmbox::control {

namespace {

std::vector<double> normalize(const std::vector<double>& raw) {
  const double total = std::accumulate(raw.begin(), raw.end(), 0.0);
  std::vector<double> shares(raw.size(), 0.0);
  if (total <= 0) return shares;
  for (std::size_t i = 0; i < raw.size(); ++i) shares[i] = raw[i] / total;
  return shares;
}

}  // namespace

const char* to_string(DriftDetector::Decision d) noexcept {
  switch (d) {
    case DriftDetector::Decision::kSeeded: return "seeded";
    case DriftDetector::Decision::kTrigger: return "trigger";
    case DriftDetector::Decision::kBelowThreshold: return "below-threshold";
    case DriftDetector::Decision::kCooldown: return "cooldown";
    case DriftDetector::Decision::kTooFewReports: return "too-few-reports";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// DriftDetector
// ---------------------------------------------------------------------------

DriftDetector::DriftDetector(double threshold, int cooldown_epochs, std::uint64_t min_reports)
    : threshold_(threshold), cooldown_(cooldown_epochs), min_reports_(min_reports) {
  SDM_CHECK_MSG(threshold >= 0 && threshold <= 1, "drift threshold must be in [0, 1]");
  SDM_CHECK_MSG(cooldown_epochs >= 1, "cooldown must be at least 1 epoch");
}

double DriftDetector::drift(const std::vector<double>& reference,
                            const std::vector<double>& observed) {
  SDM_CHECK_MSG(reference.size() == observed.size(),
                "drift needs load vectors over the same middlebox set");
  const double ref_total = std::accumulate(reference.begin(), reference.end(), 0.0);
  const double obs_total = std::accumulate(observed.begin(), observed.end(), 0.0);
  if (ref_total <= 0 || obs_total <= 0) return (ref_total <= 0) == (obs_total <= 0) ? 0.0 : 1.0;
  double tv = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    tv += std::abs(reference[i] / ref_total - observed[i] / obs_total);
  }
  return 0.5 * tv;
}

DriftDetector::Decision DriftDetector::evaluate(const std::vector<double>& observed,
                                                std::uint64_t pending_reports) {
  ++epochs_since_solve_;
  if (pending_reports < min_reports_) return Decision::kTooFewReports;
  const double total = std::accumulate(observed.begin(), observed.end(), 0.0);
  if (total <= 0) {
    // No load observed at all: nothing to compare (and nothing worth
    // re-balancing). Never seed the reference from silence.
    last_drift_ = 0;
    return Decision::kBelowThreshold;
  }
  if (!has_reference_) {
    // Observe-first: the first usable window defines what the current plan
    // serves; drift is measured against it from the next epoch on.
    reference_ = normalize(observed);
    has_reference_ = true;
    last_drift_ = 0;
    return Decision::kSeeded;
  }
  SDM_CHECK_MSG(observed.size() == reference_.size(),
                "drift needs load vectors over the same middlebox set");
  last_drift_ = drift(reference_, observed);
  if (epochs_since_solve_ < cooldown_) return Decision::kCooldown;
  return last_drift_ > threshold_ ? Decision::kTrigger : Decision::kBelowThreshold;
}

void DriftDetector::mark_solved(const std::vector<double>& observed) {
  reference_ = normalize(observed);
  has_reference_ = true;
  epochs_since_solve_ = 0;
}

// ---------------------------------------------------------------------------
// ReoptimizePolicy
// ---------------------------------------------------------------------------

ReoptimizePolicy::ReoptimizePolicy(ControllerAgent& agent, const ControlPlane& plane,
                                   const obs::EpochRecorder& recorder, ReoptimizeParams params)
    : agent_(agent),
      proxies_(plane.proxies),
      middleboxes_(plane.middleboxes),
      recorder_(recorder),
      params_(params),
      detector_(params.drift_threshold, params.cooldown_epochs, params.min_reports) {
  SDM_CHECK_MSG(params_.epoch_period > 0, "re-optimisation epoch period must be positive");
  SDM_CHECK_MSG(!middleboxes_.empty(), "the loop needs middleboxes to watch");
  base_.assign(middleboxes_.size(), 0.0);
}

void ReoptimizePolicy::start(sim::SimNetwork& net) {
  if (running()) return;
  periodic_ = net.simulator().schedule_every(params_.epoch_period, [this, &net] { epoch(net); });
}

void ReoptimizePolicy::stop() noexcept {
  if (periodic_ != nullptr) periodic_->cancel();
}

std::vector<double> ReoptimizePolicy::cumulative_loads() const {
  std::vector<double> cum(middleboxes_.size(), 0.0);
  for (std::size_t i = 0; i < middleboxes_.size(); ++i) {
    const obs::Labels labels{{"device", middleboxes_[i]->middlebox()->name()},
                             {"subsystem", "middlebox"}};
    cum[i] = recorder_.latest("mbx_processed_packets", labels).value_or(0.0);
  }
  return cum;
}

void ReoptimizePolicy::epoch(sim::SimNetwork& net) {
  ++counters_.epochs;
  const std::vector<double> cum = cumulative_loads();
  std::vector<double> window(cum.size());
  for (std::size_t i = 0; i < cum.size(); ++i) window[i] = cum[i] - base_[i];

  DriftDetector::Decision decision = detector_.evaluate(window, agent_.pending_reports());
  if (decision == DriftDetector::Decision::kTrigger) {
    // The drift trigger roots this episode's trace tree, exactly like a
    // crash roots a failure episode: the replan span below becomes its
    // child via the context stack. Drift never leaves the network
    // unenforced — the old plan keeps enforcing while the new one rolls out.
    obs::SpanId episode = 0;
    if (spans_ != nullptr) {
      episode = spans_->begin("episode:drift", net.simulator().now(), 0, "", "reoptimize");
      spans_->set_attr(episode, "drift", detector_.last_drift());
      spans_->set_attr(episode, "threshold", params_.drift_threshold);
      spans_->set_attr(episode, "unenforced", 0);
      spans_->push_context(episode);
    }
    ReplanRequest request;
    request.trigger = ReplanTrigger::kDrift;
    const ReplanOutcome outcome = agent_.replan(net, request);
    if (episode != 0) spans_->pop_context();
    if (outcome.suppressed) {
      // The report pool emptied between the gate and the solve (cannot
      // happen from this loop, but replan() owns the final word).
      ++counters_.suppressed;
      ++counters_.suppressed_reports;
      decision = DriftDetector::Decision::kTooFewReports;
      if (episode != 0) {
        spans_->set_attr(episode, "suppressed", 1);
        spans_->end(episode, net.simulator().now());
      }
    } else {
      ++counters_.triggered;
      ++counters_.solves;
      counters_.solve_pivots += outcome.lp_pivots;
      if (outcome.lp_warm_started) ++counters_.solve_warm_starts;
      counters_.pushes += outcome.pushes_sent;
      counters_.push_bytes += outcome.push_bytes;
      solve_ms_wall_ += outcome.solve_ms;
      solve_ms_modeled_ += modeled_solve_ms(outcome.lp_pivots);
      detector_.mark_solved(window);
      base_ = cum;
      SDM_LOG_INFO("reopt", "drift " << detector_.last_drift() << " > "
                                     << params_.drift_threshold << ": re-solved (λ = "
                                     << outcome.lambda << ", " << outcome.pushes_sent
                                     << " pushes)");
    }
  } else if (decision == DriftDetector::Decision::kSeeded) {
    // The reference window is consumed: measure future windows from here.
    base_ = cum;
  } else {
    ++counters_.suppressed;
    switch (decision) {
      case DriftDetector::Decision::kBelowThreshold: ++counters_.suppressed_drift; break;
      case DriftDetector::Decision::kCooldown: ++counters_.suppressed_cooldown; break;
      case DriftDetector::Decision::kTooFewReports: ++counters_.suppressed_reports; break;
      default: break;
    }
  }
  log_.push_back(Event{counters_.epochs, net.simulator().now(), decision, detector_.last_drift()});

  if (params_.request_reports) {
    for (ManagedDevice* proxy : proxies_) proxy->send_report(net, agent_.address());
  }
}

void ReoptimizePolicy::register_metrics(obs::MetricsRegistry& registry) const {
  const obs::Labels labels{{"subsystem", "reoptimize"}};
  registry.expose_counter("reopt_epochs", labels, &counters_.epochs);
  registry.expose_counter("reopt_triggered", labels, &counters_.triggered);
  registry.expose_counter("reopt_suppressed", labels, &counters_.suppressed);
  registry.expose_counter("reopt_suppressed_drift", labels, &counters_.suppressed_drift);
  registry.expose_counter("reopt_suppressed_cooldown", labels, &counters_.suppressed_cooldown);
  registry.expose_counter("reopt_suppressed_reports", labels, &counters_.suppressed_reports);
  registry.expose_counter("reopt_solves", labels, &counters_.solves);
  registry.expose_counter("reopt_solve_pivots", labels, &counters_.solve_pivots);
  registry.expose_counter("reopt_solve_warm_starts", labels, &counters_.solve_warm_starts);
  registry.expose_counter("reopt_pushes", labels, &counters_.pushes);
  registry.expose_counter("reopt_push_bytes", labels, &counters_.push_bytes);
  // Modeled (pivot-derived), NOT wall time: keeps same-seed exports
  // byte-identical. solve_ms_wall() has the measured number.
  registry.expose_gauge("reopt_solve_ms", labels, [this] { return solve_ms_modeled_; });
  registry.expose_gauge("reopt_last_drift", labels, [this] { return detector_.last_drift(); });
}

}  // namespace sdmbox::control
