// Controller-side failure detection: the heartbeat protocol that replaces
// the tests' omniscient `Deployment::set_failed` oracle with something a
// real deployment could run.
//
// The HealthMonitor lives next to the ControllerAgent on the controller
// host. Every `probe_period` it sends one sequenced kHeartbeat to each
// managed device over the simulated network (so probes share fate with the
// traffic they vouch for: a partitioned device IS a failed device from the
// controller's point of view). A device that fails to answer
// `miss_threshold` consecutive rounds is declared failed; middleboxes are
// marked in the Deployment and the controller recomputes + pushes a fresh
// plan — the paper's dependability loop (§III.A "the controller
// re-configures the software-defined middleboxes"), closed end to end
// in-band. A declared-failed device that answers again is revived the same
// way.
//
// Detection latency and false positives are first-class counters because
// the probe_period × miss_threshold trade-off is exactly what
// bench/ablation_detection_latency measures.
#pragma once

#include <unordered_map>
#include <vector>

#include "control/endpoints.hpp"
#include "stats/histogram.hpp"

namespace sdmbox::control {

struct HealthParams {
  /// Seconds between probe rounds.
  double probe_period = 0.25;
  /// Consecutive unanswered rounds before a device is declared failed.
  /// Worst-case detection latency ≈ (miss_threshold + 1) × probe_period.
  int miss_threshold = 3;
  /// Probe proxies too (their failure can't be routed around — no recompute
  /// helps — but the operator still wants to know).
  bool monitor_proxies = true;
  /// Recompute + push automatically on every declared failure/revival.
  bool auto_repair = true;
  /// Strategy for the recovery plan (kLoadBalanced additionally needs fresh
  /// measurement reports at the controller).
  core::StrategyKind repush_strategy = core::StrategyKind::kHotPotato;
  /// When a probe round declares exactly ONE middlebox failed, scope the
  /// recovery replan to it (ReplanRequest.failed_node): the plan is patched
  /// locally and only devices whose chains traversed the dead box are
  /// re-pushed. Multi-failure rounds and revivals always take the full
  /// recompute path.
  bool patch_single_failure = true;
};

struct HealthCounters {
  std::uint64_t probes_sent = 0;
  std::uint64_t replies_received = 0;
  std::uint64_t failures_declared = 0;
  std::uint64_t revivals_declared = 0;
  /// Failures declared while the node was actually up (the detector's
  /// specificity under control-channel loss).
  std::uint64_t false_positives = 0;
  std::uint64_t repushes = 0;           // recovery plans pushed
  std::uint64_t recompute_refused = 0;  // no live implementer left for some function
  /// Σ (declaration time - last reply time) over declared failures; divide
  /// by failures_declared for the mean detection latency.
  double detection_latency_total = 0;
};

class HealthMonitor {
public:
  /// A failure/revival declaration, in order.
  struct Event {
    net::NodeId node;
    sim::SimTime at = 0;
    bool failed = false;  // true = declared failed, false = revived
  };

  /// Monitors every middlebox of `deployment` (and every proxy of `network`
  /// when monitor_proxies). `deployment` must be the instance the
  /// controller's recompute consults — declarations flow through
  /// Deployment::set_failed. Registers itself with `agent` for
  /// kHeartbeatAck dispatch; all references must outlive the monitor.
  HealthMonitor(ControllerAgent& agent, core::Deployment& deployment,
                const net::GeneratedNetwork& network, HealthParams params = {});

  /// Begin probing (idempotent). Call before or during the simulation run.
  void start(sim::SimNetwork& net);
  /// Stop after the current round — without this the periodic reschedule
  /// keeps the event calendar alive forever.
  void stop() { running_ = false; }

  /// Called by the ControllerAgent for every kHeartbeatAck it receives.
  void on_probe_reply(sim::SimNetwork& net, net::IpAddress from, std::uint64_t seq);

  bool declared_failed(net::NodeId node) const;
  const std::vector<Event>& log() const noexcept { return log_; }
  const HealthCounters& counters() const noexcept { return counters_; }
  const HealthParams& params() const noexcept { return params_; }

  /// Expose the detection bookkeeping as health_* registry views (probes,
  /// declarations, false positives, detection-latency total and mean). When
  /// a span tracer is attached (set_spans BEFORE this call) additionally
  /// registers the conv_detection_latency histogram derived from spans.
  void register_metrics(obs::MetricsRegistry& registry) const;

  /// Attach a span tracer: each declaration emits a `detect` child span
  /// under the fault's episode root (found via node-id correlation; a
  /// declaration with no matching fault — a false positive — opens its own
  /// episode root) and samples conv_detection_latency. Repush-triggering
  /// declarations park their episode on the tracer's context stack so the
  /// controller's replan span joins the same trace tree.
  void set_spans(obs::SpanTracer* spans) noexcept { spans_ = spans; }

  double mean_detection_latency() const noexcept {
    return counters_.failures_declared == 0
               ? 0.0
               : counters_.detection_latency_total /
                     static_cast<double>(counters_.failures_declared);
  }

private:
  struct Device {
    net::NodeId node;
    net::IpAddress address;
    bool is_proxy = false;
    std::uint64_t seq_sent = 0;   // last probe sequence sent to this device
    std::uint64_t seq_acked = 0;  // highest probe sequence it answered
    int misses = 0;               // consecutive unanswered rounds
    bool declared_failed = false;
    sim::SimTime last_reply_at = 0;
  };

  void round(sim::SimNetwork& net);
  /// Recovery replan; `failed_node` (when valid) scopes it to a local patch.
  void repush(sim::SimNetwork& net, net::NodeId failed_node = {});
  /// Returns true when the declaration parked an episode span on the
  /// tracer's context stack (the caller pops after any repush).
  bool declare(sim::SimNetwork& net, Device& device, sim::SimTime now);

  ControllerAgent& agent_;
  core::Deployment& deployment_;
  HealthParams params_;
  obs::SpanTracer* spans_ = nullptr;
  stats::Histogram conv_detection_latency_;
  std::vector<Device> devices_;
  std::unordered_map<std::uint32_t, std::size_t> by_addr_;  // address -> devices_ index
  HealthCounters counters_;
  std::vector<Event> log_;
  bool running_ = false;
};

}  // namespace sdmbox::control
