// Knobs for the drift-triggered re-optimization loop.
//
// One struct shared by ReoptimizePolicy, exp::ScenarioSpec and scenario_cli,
// so spec files and CLI flags stay mechanically in sync. Kept dependency-free
// so embedders (exp::ScenarioSpec in particular) can hold it by value.
#pragma once

#include <cstdint>

namespace sdmbox::control {

/// Configuration of the measurement-driven re-optimization loop (paper §III.E:
/// the controller periodically re-solves the load-balancing LP when measured
/// traffic drifts from the matrix the current plan was optimized for).
struct ReoptimizeOptions {
  /// Seconds between drift evaluations. Embedders that gate the loop on a
  /// spec treat 0 as "loop disabled".
  double epoch_period = 0.5;

  /// Total-variation drift (in [0,1]) between the reference load shares and
  /// the current window that triggers a re-plan. In adaptive mode this is
  /// the floor of the effective threshold.
  double drift_threshold = 0.1;

  /// Epochs that must elapse after a solve before the next trigger
  /// (hysteresis against re-solving on every report).
  int cooldown_epochs = 2;

  /// Minimum load reports that must arrive in a window before it is trusted.
  std::uint64_t min_reports = 1;

  /// Broadcast a report request each epoch before evaluating drift.
  bool request_reports = true;

  /// Scale the trigger threshold to measured report noise: the effective
  /// threshold becomes max(drift_threshold, noise_multiplier * noise) where
  /// noise is a running stddev estimate of the per-middlebox load shares.
  bool adaptive = false;

  /// Multiplier on the noise estimate in adaptive mode.
  double noise_multiplier = 3.0;

  /// Trend-extrapolate the load shares one epoch ahead and trigger early
  /// when the extrapolated drift crosses the (effective) threshold.
  bool predictive = false;

  friend bool operator==(const ReoptimizeOptions&, const ReoptimizeOptions&) = default;
};

}  // namespace sdmbox::control
