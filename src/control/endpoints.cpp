#include "control/endpoints.hpp"

namespace sdmbox::control {

// ---------------------------------------------------------------------------
// ManagedDevice
// ---------------------------------------------------------------------------

ManagedDevice::ManagedDevice(net::NodeId node, net::IpAddress address,
                             std::unique_ptr<core::ProxyAgent> proxy,
                             std::unique_ptr<core::MiddleboxAgent> middlebox)
    : node_(node), address_(address), proxy_(std::move(proxy)), middlebox_(std::move(middlebox)) {
  SDM_CHECK_MSG((proxy_ != nullptr) != (middlebox_ != nullptr),
                "a managed device wraps exactly one agent");
}

void ManagedDevice::on_packet(sim::SimNetwork& net, packet::Packet pkt, net::NodeId from) {
  if (pkt.kind == packet::PacketKind::kConfigPush && pkt.routing_header().dst == address_) {
    bool applied = false;
    if (pkt.control_payload != nullptr) {
      if (auto config = decode_device_config(*pkt.control_payload)) {
        applied = proxy_ ? proxy_->apply_config(std::move(*config))
                         : middlebox_->apply_config(std::move(*config));
      }
    }
    ++(applied ? counters_.configs_applied : counters_.configs_rejected);
    if (applied) {
      // Confirm the rollout to the controller.
      packet::Packet ack;
      ack.kind = packet::PacketKind::kConfigAck;
      ack.inner.src = address_;
      ack.inner.dst = pkt.inner.src;  // the controller
      ack.inner.protocol = packet::kProtoUdp;
      ack.payload_bytes = 12;
      net.inject(node_, std::move(ack), net.simulator().now());
    }
    net.deliver(node_, pkt);
    return;
  }
  if (pkt.kind == packet::PacketKind::kConfigAck && pkt.routing_header().dst != address_) {
    net.forward(node_, std::move(pkt));
    return;
  }
  // Control traffic originated here (reports) or transiting: plain routing,
  // not policy enforcement.
  if (pkt.kind == packet::PacketKind::kConfigPush ||
      pkt.kind == packet::PacketKind::kMeasurementReport) {
    net.forward(node_, std::move(pkt));
    return;
  }
  if (proxy_ != nullptr) {
    proxy_->on_packet(net, std::move(pkt), from);
  } else {
    middlebox_->on_packet(net, std::move(pkt), from);
  }
}

std::size_t ManagedDevice::send_report(sim::SimNetwork& net, net::IpAddress controller) {
  SDM_CHECK_MSG(proxy_ != nullptr, "only proxies produce measurement reports");
  MeasurementReport report;
  report.src_subnet = proxy_->subnet_index();
  for (const auto& m : proxy_->measurements()) {
    report.lines.push_back(MeasurementReport::Line{m.policy.v, m.dst_subnet, m.packets});
  }
  proxy_->clear_measurements();

  packet::Packet pkt;
  pkt.kind = packet::PacketKind::kMeasurementReport;
  pkt.inner.src = address_;
  pkt.inner.dst = controller;
  pkt.inner.protocol = packet::kProtoUdp;
  pkt.control_payload =
      std::make_shared<const std::vector<std::uint8_t>>(encode_measurement_report(report));
  const std::size_t bytes = pkt.control_payload->size();
  pkt.payload_bytes = static_cast<std::uint32_t>(bytes);
  ++counters_.reports_sent;
  net.inject(node_, std::move(pkt), net.simulator().now());
  return bytes;
}

// ---------------------------------------------------------------------------
// ControllerAgent
// ---------------------------------------------------------------------------

ControllerAgent::ControllerAgent(net::NodeId node, net::IpAddress address,
                                 core::Controller& controller,
                                 const net::GeneratedNetwork& network)
    : node_(node), address_(address), controller_(controller), network_(network) {}

void ControllerAgent::on_packet(sim::SimNetwork& net, packet::Packet pkt, net::NodeId /*from*/) {
  if (pkt.routing_header().dst != address_) {
    // Our own outbound control traffic (config pushes) leaving this host.
    net.forward(node_, std::move(pkt));
    return;
  }
  if (pkt.kind == packet::PacketKind::kConfigAck) {
    ++acks_;
    net.deliver(node_, pkt);
    return;
  }
  if (pkt.kind == packet::PacketKind::kMeasurementReport && pkt.control_payload != nullptr) {
    if (const auto report = decode_measurement_report(*pkt.control_payload)) {
      for (const auto& line : report->lines) {
        collected_.add_sample(policy::PolicyId{line.policy}, report->src_subnet,
                              line.dst_subnet, static_cast<double>(line.packets));
      }
      ++reports_received_;
    } else {
      ++malformed_;
    }
  }
  // Reports and anything else addressed here are consumed (management host).
  net.deliver(node_, pkt);
}

std::size_t ControllerAgent::push_plan(sim::SimNetwork& net, const core::EnforcementPlan& plan) {
  ++version_;
  std::size_t pushed = 0;
  for (const auto& [node_v, cfg] : plan.configs) {
    const net::NodeId device{node_v};
    // Differential distribution: compare against the last pushed slice with
    // the version zeroed out — unchanged devices are skipped entirely.
    core::DeviceConfig slice = core::slice_for_device(plan, device, 0);
    const std::vector<std::uint8_t> fingerprint = encode_device_config(slice);
    const auto it = last_pushed_.find(node_v);
    if (it != last_pushed_.end() && it->second == fingerprint) {
      ++pushes_skipped_;
      continue;
    }
    last_pushed_[node_v] = fingerprint;
    slice.version = version_;
    packet::Packet pkt;
    pkt.kind = packet::PacketKind::kConfigPush;
    pkt.inner.src = address_;
    pkt.inner.dst = net.topology().node(device).address;
    pkt.inner.protocol = packet::kProtoUdp;
    pkt.control_payload =
        std::make_shared<const std::vector<std::uint8_t>>(encode_device_config(slice));
    pkt.payload_bytes = static_cast<std::uint32_t>(pkt.control_payload->size());
    push_bytes_ += pkt.payload_bytes;
    net.inject(node_, std::move(pkt), net.simulator().now());
    ++pushed;
    ++pushes_sent_;
  }
  return pushed;
}

core::EnforcementPlan ControllerAgent::reoptimize_and_push(sim::SimNetwork& net) {
  core::EnforcementPlan plan =
      controller_.compile(core::StrategyKind::kLoadBalanced, &collected_);
  push_plan(net, plan);
  collected_ = workload::TrafficMatrix{};
  return plan;
}

// ---------------------------------------------------------------------------
// Installation
// ---------------------------------------------------------------------------

net::NodeId add_controller_host(net::GeneratedNetwork& network) {
  // The controller is a management host off the first gateway (campus) or
  // the first core router (gateway-less topologies).
  const net::NodeId attach =
      network.gateways.empty() ? network.core_routers.front() : network.gateways.front();
  const net::NodeId node = network.topo.add_node(net::NodeKind::kHost, "controller",
                                                 net::IpAddress(172, 30, 0, 1));
  network.topo.add_link(attach, node, net::LinkParams{});
  return node;
}

ControlPlane install_control_plane(sim::SimNetwork& simnet, net::GeneratedNetwork& network,
                                   const core::Deployment& deployment,
                                   const policy::PolicyList& policies,
                                   core::Controller& controller, net::NodeId controller_node,
                                   const core::EnforcementPlan& initial_plan,
                                   const core::AgentOptions& options) {
  ControlPlane cp;
  cp.controller_node = controller_node;
  auto controller_agent = std::make_unique<ControllerAgent>(
      controller_node, network.topo.node(controller_node).address, controller, network);
  cp.controller = controller_agent.get();
  simnet.attach(controller_node, std::move(controller_agent));

  for (std::size_t s = 0; s < network.proxies.size(); ++s) {
    auto proxy =
        std::make_unique<core::ProxyAgent>(network, s, policies, initial_plan, options);
    auto managed = std::make_unique<ManagedDevice>(
        network.proxies[s], network.topo.node(network.proxies[s]).address, std::move(proxy),
        nullptr);
    cp.proxies.push_back(managed.get());
    simnet.attach(network.proxies[s], std::move(managed));
  }
  if (network.proxy_mode == net::ProxyMode::kOffPath) {
    for (std::size_t e = 0; e < network.edge_routers.size(); ++e) {
      simnet.attach(network.edge_routers[e],
                    std::make_unique<core::EdgeLoopbackAgent>(network.edge_routers[e],
                                                              network.proxies[e]));
    }
  }
  for (const core::MiddleboxInfo& m : deployment.middleboxes()) {
    auto box =
        std::make_unique<core::MiddleboxAgent>(network, m, policies, initial_plan, options);
    auto managed = std::make_unique<ManagedDevice>(m.node, network.topo.node(m.node).address,
                                                   nullptr, std::move(box));
    cp.middleboxes.push_back(managed.get());
    simnet.attach(m.node, std::move(managed));
  }
  return cp;
}

}  // namespace sdmbox::control
