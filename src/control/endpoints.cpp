#include "control/endpoints.hpp"

#include <algorithm>
#include <chrono>

#include "control/health.hpp"
#include "obs/metrics.hpp"

namespace sdmbox::control {

const char* to_string(ReplanTrigger t) noexcept {
  switch (t) {
    case ReplanTrigger::kInitial: return "initial";
    case ReplanTrigger::kFailure: return "failure";
    case ReplanTrigger::kMeasurement: return "measurement";
    case ReplanTrigger::kDrift: return "drift";
  }
  return "?";
}

namespace {

/// Device -> controller rollout confirmation, echoing the push's sequence.
void send_config_ack(sim::SimNetwork& net, net::NodeId node, net::IpAddress device,
                     net::IpAddress controller, std::uint64_t seq) {
  packet::Packet ack;
  ack.kind = packet::PacketKind::kConfigAck;
  ack.inner.src = device;
  ack.inner.dst = controller;
  ack.inner.protocol = packet::kProtoUdp;
  ack.payload_bytes = 12;
  ack.control_seq = seq;
  net.inject(node, std::move(ack), net.simulator().now());
}

}  // namespace

// ---------------------------------------------------------------------------
// ManagedDevice
// ---------------------------------------------------------------------------

ManagedDevice::ManagedDevice(net::NodeId node, net::IpAddress address,
                             std::unique_ptr<core::ProxyAgent> proxy,
                             std::unique_ptr<core::MiddleboxAgent> middlebox)
    : node_(node), address_(address), proxy_(std::move(proxy)), middlebox_(std::move(middlebox)) {
  SDM_CHECK_MSG((proxy_ != nullptr) != (middlebox_ != nullptr),
                "a managed device wraps exactly one agent");
}

void ManagedDevice::on_packet(sim::SimNetwork& net, packet::Packet pkt, net::NodeId from) {
  if (pkt.kind == packet::PacketKind::kConfigPush && pkt.routing_header().dst == address_) {
    const std::uint64_t seq = pkt.control_seq;
    if (seq != 0 && seq == last_seq_) {
      // Retransmission of the push we already applied (our ack was lost or
      // late). Re-ack, don't re-apply.
      ++counters_.configs_duplicate;
      ++counters_.acks_sent;
      send_config_ack(net, node_, address_, pkt.inner.src, seq);
      net.deliver(node_, pkt);
      return;
    }
    if (seq != 0 && seq < last_seq_) {
      // Out of order: an older push overtaken by a newer one. Acking it
      // would tell the controller the NEW config landed, so stay silent and
      // let the stale push die of retransmission exhaustion.
      ++counters_.configs_rejected;
      net.deliver(node_, pkt);
      return;
    }
    bool applied = false;
    if (pkt.control_payload != nullptr) {
      if (auto config = decode_device_config(*pkt.control_payload)) {
        applied = proxy_ ? proxy_->apply_config(std::move(*config))
                         : middlebox_->apply_config(std::move(*config));
      }
    }
    ++(applied ? counters_.configs_applied : counters_.configs_rejected);
    if (applied) {
      last_seq_ = seq;
      ++counters_.acks_sent;
      send_config_ack(net, node_, address_, pkt.inner.src, seq);
    }
    net.deliver(node_, pkt);
    return;
  }
  if (pkt.kind == packet::PacketKind::kConfigAck && pkt.routing_header().dst != address_) {
    net.forward(node_, std::move(pkt));
    return;
  }
  // Control traffic originated here (reports) or transiting: plain routing,
  // not policy enforcement.
  if (pkt.kind == packet::PacketKind::kConfigPush ||
      pkt.kind == packet::PacketKind::kMeasurementReport) {
    net.forward(node_, std::move(pkt));
    return;
  }
  if (proxy_ != nullptr) {
    proxy_->on_packet(net, std::move(pkt), from);
  } else {
    middlebox_->on_packet(net, std::move(pkt), from);
  }
}

std::size_t ManagedDevice::send_report(sim::SimNetwork& net, net::IpAddress controller) {
  SDM_CHECK_MSG(proxy_ != nullptr, "only proxies produce measurement reports");
  MeasurementReport report;
  report.src_subnet = proxy_->subnet_index();
  for (const auto& m : proxy_->measurements()) {
    report.lines.push_back(MeasurementReport::Line{m.policy.v, m.dst_subnet, m.packets});
  }
  proxy_->clear_measurements();

  packet::Packet pkt;
  pkt.kind = packet::PacketKind::kMeasurementReport;
  pkt.inner.src = address_;
  pkt.inner.dst = controller;
  pkt.inner.protocol = packet::kProtoUdp;
  pkt.control_payload =
      std::make_shared<const std::vector<std::uint8_t>>(encode_measurement_report(report));
  const std::size_t bytes = pkt.control_payload->size();
  pkt.payload_bytes = static_cast<std::uint32_t>(bytes);
  ++counters_.reports_sent;
  net.inject(node_, std::move(pkt), net.simulator().now());
  return bytes;
}

// ---------------------------------------------------------------------------
// ControllerAgent
// ---------------------------------------------------------------------------

ControllerAgent::ControllerAgent(net::NodeId node, net::IpAddress address,
                                 core::Controller& controller,
                                 const net::GeneratedNetwork& network)
    : node_(node), address_(address), controller_(controller), network_(network) {}

void ControllerAgent::on_packet(sim::SimNetwork& net, packet::Packet pkt, net::NodeId /*from*/) {
  if (pkt.routing_header().dst != address_) {
    // Our own outbound control traffic (config pushes) leaving this host.
    net.forward(node_, std::move(pkt));
    return;
  }
  if (pkt.kind == packet::PacketKind::kConfigAck) {
    ++acks_;
    const auto node_it = addr_to_node_.find(pkt.inner.src.value());
    if (node_it != addr_to_node_.end()) {
      double attempts = 1;
      const auto p = pending_.find(node_it->second);
      if (p != pending_.end() && p->second.seq == pkt.control_seq) {
        attempts = p->second.attempts;
        pending_.erase(p);  // rollout confirmed; retransmission timers go idle
      } else if (pkt.control_seq != 0) {
        // Ack for a push no longer outstanding (duplicate after a
        // retransmission, or overtaken by a newer push).
        ++stale_acks_;
      }
      if (spans_ != nullptr) {
        const auto sp = span_pending_.find(node_it->second);
        if (sp != span_pending_.end() && sp->second.seq == pkt.control_seq) {
          resolve_push_span(node_it->second, net.simulator().now(), "ack", attempts);
        }
      }
    }
    net.deliver(node_, pkt);
    return;
  }
  if (pkt.kind == packet::PacketKind::kHeartbeatAck) {
    if (health_ != nullptr) health_->on_probe_reply(net, pkt.inner.src, pkt.control_seq);
    net.deliver(node_, pkt);
    return;
  }
  if (pkt.kind == packet::PacketKind::kMeasurementReport && pkt.control_payload != nullptr) {
    if (const auto report = decode_measurement_report(*pkt.control_payload)) {
      for (const auto& line : report->lines) {
        collected_.add_sample(policy::PolicyId{line.policy}, report->src_subnet,
                              line.dst_subnet, static_cast<double>(line.packets));
      }
      ++reports_received_;
      ++pending_reports_;
    } else {
      ++malformed_;
    }
  }
  // Reports and anything else addressed here are consumed (management host).
  net.deliver(node_, pkt);
}

void ControllerAgent::send_push(sim::SimNetwork& net, const PendingPush& push) {
  packet::Packet pkt;
  pkt.kind = packet::PacketKind::kConfigPush;
  pkt.inner.src = address_;
  pkt.inner.dst = push.device_addr;
  pkt.inner.protocol = packet::kProtoUdp;
  pkt.control_seq = push.seq;
  pkt.control_payload = push.payload;
  pkt.payload_bytes = static_cast<std::uint32_t>(push.payload->size());
  push_bytes_ += pkt.payload_bytes;
  net.inject(node_, std::move(pkt), net.simulator().now());
}

void ControllerAgent::schedule_retransmit(sim::SimNetwork& net, std::uint32_t device_v,
                                          std::uint64_t seq, double rto) {
  net.simulator().schedule_in(rto, [this, &net, device_v, seq, rto] {
    const auto it = pending_.find(device_v);
    if (it == pending_.end() || it->second.seq != seq) return;  // acked or superseded
    PendingPush& push = it->second;
    if (push.attempts > retransmit_.max_retries) {
      // Give up — and void the differential fingerprint, or the device (which
      // may never have applied this slice) would be skipped forever.
      ++pushes_abandoned_;
      last_pushed_.erase(device_v);
      const double attempts = push.attempts;
      pending_.erase(it);
      resolve_push_span(device_v, net.simulator().now(), "abandoned", attempts);
      return;
    }
    ++push.attempts;
    ++retransmissions_;
    if (spans_ != nullptr) {
      const auto sp = span_pending_.find(device_v);
      if (sp != span_pending_.end() && sp->second.seq == seq) {
        const auto id = spans_->instant("retransmit", net.simulator().now(),
                                        sp->second.push_span, "", "controller");
        spans_->set_attr(id, "attempt", push.attempts);
      }
    }
    send_push(net, push);
    schedule_retransmit(net, device_v, seq, rto * retransmit_.backoff);
  });
}

void ControllerAgent::resolve_push_span(std::uint32_t device_v, double now, const char* how,
                                        double attempts) {
  if (spans_ == nullptr) return;
  const auto it = span_pending_.find(device_v);
  if (it == span_pending_.end()) return;
  const PushSpanState state = it->second;
  span_pending_.erase(it);
  if (std::string_view(how) == "ack") {
    const auto ack = spans_->instant("ack", now, state.push_span, "", "controller");
    spans_->set_attr(ack, "attempts", attempts);
  } else {
    // superseded / abandoned / voided: mark the push span with its fate.
    spans_->set_attr(state.push_span, how, 1);
  }
  spans_->end(state.push_span, now);
  const auto rs = replan_spans_.find(state.replan_span);
  if (rs != replan_spans_.end() && rs->second.outstanding > 0) {
    if (--rs->second.outstanding == 0) complete_replan_span(state.replan_span, now);
  }
}

void ControllerAgent::complete_replan_span(obs::SpanId replan_span, double now) {
  const auto it = replan_spans_.find(replan_span);
  if (it == replan_spans_.end()) return;
  const ReplanSpanState state = std::move(it->second);
  replan_spans_.erase(it);
  spans_->end(replan_span, now);
  conv_push_latency_.add(now - state.started_at);
  // The rollout is live everywhere it could land: close the episodes this
  // replan was acting for. An unenforced episode's full lifetime — fault to
  // plan-live — is the paper's dangerous window.
  for (const obs::SpanId episode : state.episodes) {
    const obs::Span* e = spans_->find(episode);
    if (e == nullptr || !e->open()) continue;
    if (e->attr_or("unenforced") == 1) {
      conv_total_unenforced_window_.add(now - e->start);
      spans_->set_attr(episode, "unenforced_window", now - e->start);
    }
    spans_->end(episode, now);
  }
}

std::size_t ControllerAgent::distribute(sim::SimNetwork& net,
                                        const core::EnforcementPlan& plan) {
  ++version_;
  last_plan_ = plan;
  std::size_t pushed = 0;
  for (const auto& [node_v, cfg] : plan.configs) {
    const net::NodeId device{node_v};
    // Differential distribution: compare against the last pushed slice with
    // the version zeroed out — unchanged devices are skipped entirely.
    core::DeviceConfig slice = core::slice_for_device(plan, device, 0);
    const std::vector<std::uint8_t> fingerprint = encode_device_config(slice);
    const auto it = last_pushed_.find(node_v);
    if (it != last_pushed_.end() && it->second == fingerprint) {
      ++pushes_skipped_;
      continue;
    }
    last_pushed_[node_v] = fingerprint;
    slice.version = version_;

    PendingPush push;
    push.seq = ++push_seq_;
    push.device_addr = net.topology().node(device).address;
    push.payload =
        std::make_shared<const std::vector<std::uint8_t>>(encode_device_config(slice));
    addr_to_node_[push.device_addr.value()] = node_v;
    if (spans_ != nullptr) {
      const double now = net.simulator().now();
      // A newer push to the same device supersedes any older in-flight one.
      resolve_push_span(node_v, now, "superseded", 0);
      const auto span = spans_->begin("push", now, current_replan_span_,
                                      net.topology().node(device).name, "controller");
      spans_->set_attr(span, "bytes", static_cast<double>(push.payload->size()));
      spans_->set_attr(span, "seq", static_cast<double>(push.seq));
      span_pending_[node_v] = PushSpanState{push.seq, span, current_replan_span_};
      const auto rs = replan_spans_.find(current_replan_span_);
      if (rs != replan_spans_.end()) ++rs->second.outstanding;
    }
    send_push(net, push);
    if (retransmit_.enabled) {
      const std::uint64_t seq = push.seq;
      pending_[node_v] = std::move(push);  // a newer push supersedes any older pending one
      schedule_retransmit(net, node_v, seq, retransmit_.rto);
    }
    ++pushed;
    ++pushes_sent_;
  }
  return pushed;
}

void ControllerAgent::forget_device(net::NodeId device) {
  last_pushed_.erase(device.v);
  pending_.erase(device.v);
  // Any in-flight push span is voided — the device's applied state is
  // unknown, the next replan resends its full slice.
  if (spans_ != nullptr && span_clock_ != nullptr) {
    resolve_push_span(device.v, span_clock_->now(), "voided", 0);
  }
}

ReplanOutcome ControllerAgent::replan(sim::SimNetwork& net, const ReplanRequest& request) {
  ReplanOutcome out;
  out.trigger = request.trigger;
  ++replans_;
  const std::uint64_t skipped_before = pushes_skipped_;
  const std::uint64_t bytes_before = push_bytes_;
  const double now = net.simulator().now();

  obs::SpanId rspan = 0;
  if (spans_ != nullptr) {
    // Parent under the episode span a caller parked on the context stack
    // (fault declaration, revival, drift trigger); no context = a root
    // replan (e.g. the initial rollout).
    rspan = spans_->begin(std::string("replan:") + to_string(request.trigger), now,
                          spans_->context(), "", "controller");
    ReplanSpanState state;
    state.started_at = now;
    // Snapshot every parked episode: a multi-failure round pushes several,
    // and all of them are resolved by this one rollout.
    for (const obs::SpanId ep : spans_->context_stack()) {
      if (const obs::Span* e = spans_->find(ep); e != nullptr && e->open()) {
        state.episodes.push_back(ep);
      }
    }
    spans_->set_attr(rspan, "episodes", static_cast<double>(state.episodes.size()));
    replan_spans_.emplace(rspan, std::move(state));
  }

  const auto started = std::chrono::steady_clock::now();
  // A kFailure replan scoped to exactly one failed element patches the last
  // distributed plan locally instead of recomputing + recompiling: only the
  // devices whose chains traverse the failed element change, so every other
  // slice stays byte-identical and the differential push skips it. Without a
  // distributed plan to patch, the scope degrades to a full recompute.
  const bool has_scope = request.trigger == ReplanTrigger::kFailure &&
                         (request.failed_node.valid() != request.failed_link.valid());
  const bool scoped_failure =
      has_scope && request.plan == nullptr && !last_plan_.configs.empty();
  if (!scoped_failure && (request.recompute_assignments || has_scope)) {
    controller_.recompute();
  }

  bool compiled = false;
  if (scoped_failure) {
    const std::vector<net::NodeId> affected =
        request.failed_node.valid() ? controller_.patch_failed_node(request.failed_node)
                                    : controller_.patch_failed_link(request.failed_link);
    out.plan = last_plan_;
    for (const net::NodeId d : affected) {
      out.plan.configs[d.v] = controller_.configs().at(d.v);
    }
    // Shares whose target is no longer a candidate of the sender (the dead
    // box, or a survivor evicted by re-ranking) are dropped; the agents fall
    // back to hot-potato there until the next LP solve re-balances. Only
    // affected devices can lose shares — the LP never assigned any outside
    // the candidate sets, which are unchanged everywhere else.
    out.plan.ratios.filter_shares(
        [&](net::NodeId from, policy::FunctionId e, net::NodeId to) {
          const auto it = out.plan.configs.find(from.v);
          if (it == out.plan.configs.end()) return true;
          const std::vector<net::NodeId>& cands = it->second.candidates[e.v];
          return std::find(cands.begin(), cands.end(), to) != cands.end();
        });
    out.patched = true;
    out.devices_patched = affected.size();
    out.lambda = out.plan.lambda;
    ++replans_patched_;
    compiled = true;
  } else if (request.plan != nullptr) {
    out.plan = *request.plan;
  } else if (request.strategy == core::StrategyKind::kLoadBalanced) {
    if (pending_reports_ == 0) {
      if (request.trigger == ReplanTrigger::kFailure) {
        // Recovery must leave a live plan behind. With no reports an Eq. (2)
        // solve would assign no ratios anyway — the agents would fall back to
        // hot-potato wherever ratios are absent — so compile that directly.
        out.plan = controller_.compile(core::StrategyKind::kHotPotato);
        compiled = true;
      } else {
        // Zero reports since the last solve: the matrix is empty, a solve
        // would push a meaningless plan networkwide. No-op.
        ++replans_suppressed_;
        out.suppressed = true;
        out.plan = last_plan_;
        if (rspan != 0) {
          spans_->set_attr(rspan, "suppressed", 1);
          spans_->end(rspan, now);
          replan_spans_.erase(rspan);
        }
        return out;
      }
    } else {
      core::Controller::SolveInfo info;
      out.plan = controller_.compile(core::StrategyKind::kLoadBalanced, &collected_, &info);
      out.solved = true;
      compiled = true;
      out.lambda = info.lambda;
      out.lp_pivots = info.pivots;
      out.lp_warm_started = info.warm_started;
      out.reports_used = pending_reports_;
      collected_ = workload::TrafficMatrix{};
      pending_reports_ = 0;
    }
  } else {
    out.plan = controller_.compile(request.strategy);
    compiled = true;
  }
  out.solve_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                           started)
                     .count();

  if (rspan != 0 && compiled) {
    // Solve cost is modeled from the pivot count (wall time isn't
    // deterministic); a strategy compile without an LP records the base cost.
    const double modeled_ms = modeled_solve_ms(out.lp_pivots);
    const auto solve = spans_->instant("solve", now, rspan, "", "controller");
    spans_->set_attr(solve, "lambda", out.lambda);
    spans_->set_attr(solve, "modeled_ms", modeled_ms);
    spans_->set_attr(solve, "pivots", static_cast<double>(out.lp_pivots));
    spans_->set_attr(solve, "reports", static_cast<double>(out.reports_used));
    spans_->set_attr(solve, "solved", out.solved ? 1 : 0);
    spans_->set_attr(solve, "warm", out.lp_warm_started ? 1 : 0);
    spans_->set_attr(solve, "patched", out.patched ? 1 : 0);
    conv_solve_latency_.add(modeled_ms / 1000.0);
  }

  current_replan_span_ = rspan;
  out.pushes_sent = distribute(net, out.plan);
  current_replan_span_ = 0;
  out.pushes_skipped = static_cast<std::size_t>(pushes_skipped_ - skipped_before);
  out.push_bytes = push_bytes_ - bytes_before;

  if (rspan != 0) {
    const auto diff = spans_->instant("plan_diff", now, rspan, "", "controller");
    spans_->set_attr(diff, "bytes", static_cast<double>(out.push_bytes));
    spans_->set_attr(diff, "devices", static_cast<double>(out.plan.configs.size()));
    spans_->set_attr(diff, "pushed", static_cast<double>(out.pushes_sent));
    spans_->set_attr(diff, "skipped", static_cast<double>(out.pushes_skipped));
    spans_->set_attr(diff, "patched_devices", static_cast<double>(out.devices_patched));
    // Nothing to roll out (every slice unchanged): the plan is live now.
    const auto it = replan_spans_.find(rspan);
    if (it != replan_spans_.end() && it->second.outstanding == 0) {
      complete_replan_span(rspan, now);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Installation
// ---------------------------------------------------------------------------

net::NodeId add_controller_host(net::GeneratedNetwork& network) {
  // The controller is a management host off the first gateway (campus) or
  // the first core router (gateway-less topologies).
  const net::NodeId attach =
      network.gateways.empty() ? network.core_routers.front() : network.gateways.front();
  const net::NodeId node = network.topo.add_node(net::NodeKind::kHost, "controller",
                                                 net::IpAddress(172, 30, 0, 1));
  network.topo.add_link(attach, node, net::LinkParams{});
  return node;
}

ControlPlane install_control_plane(sim::SimNetwork& simnet, net::GeneratedNetwork& network,
                                   const core::Deployment& deployment,
                                   const policy::PolicyList& policies,
                                   core::Controller& controller, net::NodeId controller_node,
                                   const core::EnforcementPlan& initial_plan,
                                   const core::AgentOptions& options) {
  ControlPlane cp;
  cp.controller_node = controller_node;
  auto controller_agent = std::make_unique<ControllerAgent>(
      controller_node, network.topo.node(controller_node).address, controller, network);
  cp.controller = controller_agent.get();
  simnet.attach(controller_node, std::move(controller_agent));

  for (std::size_t s = 0; s < network.proxies.size(); ++s) {
    auto proxy =
        std::make_unique<core::ProxyAgent>(network, s, policies, initial_plan, options);
    auto managed = std::make_unique<ManagedDevice>(
        network.proxies[s], network.topo.node(network.proxies[s]).address, std::move(proxy),
        nullptr);
    cp.proxies.push_back(managed.get());
    simnet.attach(network.proxies[s], std::move(managed));
  }
  if (network.proxy_mode == net::ProxyMode::kOffPath) {
    for (std::size_t e = 0; e < network.edge_routers.size(); ++e) {
      simnet.attach(network.edge_routers[e],
                    std::make_unique<core::EdgeLoopbackAgent>(network.edge_routers[e],
                                                              network.proxies[e]));
    }
  }
  for (const core::MiddleboxInfo& m : deployment.middleboxes()) {
    auto box =
        std::make_unique<core::MiddleboxAgent>(network, m, policies, initial_plan, options);
    auto managed = std::make_unique<ManagedDevice>(m.node, network.topo.node(m.node).address,
                                                   nullptr, std::move(box));
    cp.middleboxes.push_back(managed.get());
    simnet.attach(m.node, std::move(managed));
  }
  return cp;
}

void ManagedDevice::register_metrics(obs::MetricsRegistry& registry) const {
  const std::string& device = proxy_ ? proxy_->name() : middlebox_->name();
  const obs::Labels base{{"device", device}, {"subsystem", "control"}};
  registry.expose_counter("control_configs_applied", base, &counters_.configs_applied);
  registry.expose_counter("control_configs_rejected", base, &counters_.configs_rejected);
  registry.expose_counter("control_configs_duplicate", base, &counters_.configs_duplicate);
  registry.expose_counter("control_acks_sent", base, &counters_.acks_sent);
  registry.expose_counter("control_reports_sent", base, &counters_.reports_sent);
  if (proxy_) proxy_->register_metrics(registry);
  if (middlebox_) middlebox_->register_metrics(registry);
}

void ControllerAgent::register_metrics(obs::MetricsRegistry& registry) const {
  const obs::Labels labels{{"subsystem", "controller"}};
  registry.expose_counter("ctrl_reports_received", labels, &reports_received_);
  registry.expose_counter("ctrl_malformed_messages", labels, &malformed_);
  registry.expose_counter("ctrl_acks_received", labels, &acks_);
  registry.expose_counter("ctrl_pushes_sent", labels, &pushes_sent_);
  registry.expose_counter("ctrl_pushes_skipped_unchanged", labels, &pushes_skipped_);
  registry.expose_counter("ctrl_push_bytes_sent", labels, &push_bytes_);
  registry.expose_counter("ctrl_retransmissions", labels, &retransmissions_);
  registry.expose_counter("ctrl_pushes_abandoned", labels, &pushes_abandoned_);
  registry.expose_counter("ctrl_stale_acks", labels, &stale_acks_);
  registry.expose_counter("ctrl_replans", labels, &replans_);
  registry.expose_counter("ctrl_replans_suppressed", labels, &replans_suppressed_);
  registry.expose_counter("ctrl_replans_patched", labels, &replans_patched_);
  registry.expose_gauge("ctrl_pending_reports", labels,
                        [this] { return static_cast<double>(pending_reports_); });
  registry.expose_gauge("ctrl_outstanding_pushes", labels,
                        [this] { return static_cast<double>(pending_.size()); });
  registry.expose_gauge("ctrl_config_version", labels,
                        [this] { return static_cast<double>(version_); });
  // conv_* series exist only when the span machinery is attached, so an
  // unattached run's metrics dump stays byte-identical.
  if (spans_ != nullptr) {
    registry.expose_histogram("conv_push_latency", labels, &conv_push_latency_);
    registry.expose_histogram("conv_solve_latency", labels, &conv_solve_latency_);
    registry.expose_histogram("conv_total_unenforced_window", labels,
                              &conv_total_unenforced_window_);
  }
}

void register_metrics(obs::MetricsRegistry& registry, const ControlPlane& plane) {
  if (plane.controller != nullptr) plane.controller->register_metrics(registry);
  for (const ManagedDevice* d : plane.proxies) d->register_metrics(registry);
  for (const ManagedDevice* d : plane.middleboxes) d->register_metrics(registry);
}

}  // namespace sdmbox::control
