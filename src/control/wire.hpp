// Bounds-checked binary wire format for control-plane messages.
//
// Little-endian fixed-width integers plus length-prefixed containers. The
// reader never throws on malformed input — it flips to an error state and
// returns zeros, so a corrupted config push is rejected as a whole rather
// than half-applied (the decoder checks ok() at the end).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sdmbox::control {

class ByteWriter {
public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(const std::string& s);  // u32 length + bytes

  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(bytes_); }
  std::size_t size() const noexcept { return bytes_.size(); }

private:
  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
public:
  explicit ByteReader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();

  /// True iff no read overran the buffer so far.
  bool ok() const noexcept { return ok_; }
  /// True iff everything was consumed and no error occurred.
  bool done() const noexcept { return ok_ && pos_ == bytes_.size(); }
  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

private:
  bool take(std::size_t n) noexcept {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace sdmbox::control
