// Control-plane endpoints running INSIDE the simulated network.
//
// This closes the paper's architecture loop end to end (§III.A/C): the
// controller is an ordinary host on the topology; configuration reaches the
// SDM devices as packets (kConfigPush carrying a serialized DeviceConfig),
// and the proxies' traffic measurements travel back as kMeasurementReport
// packets. No side channels: if the network can't deliver a config, the
// device keeps enforcing its previous one — exactly the failure semantics a
// real deployment would have.
//
// Pieces:
//  * ManagedDevice — wraps a ProxyAgent/MiddleboxAgent; intercepts config
//    pushes addressed to the device, decodes and applies them, and (for
//    proxies) emits measurement reports on demand; everything else is
//    delegated to the wrapped agent untouched.
//  * ControllerAgent — collects measurement reports into a TrafficMatrix;
//    push_plan() serializes per-device slices and injects them;
//    reoptimize_and_push() runs the §III.C loop: assemble reports, solve
//    the LP, distribute new split ratios.
//  * install_control_plane — attaches a controller host node plus managed
//    devices over a whole GeneratedNetwork.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "control/codec.hpp"
#include "core/agents.hpp"
#include "sim/network.hpp"
#include "workload/traffic_matrix.hpp"

namespace sdmbox::control {

class HealthMonitor;

struct ControlCounters {
  std::uint64_t configs_applied = 0;
  std::uint64_t configs_rejected = 0;   // malformed or stale (version or sequence)
  std::uint64_t configs_duplicate = 0;  // retransmitted pushes already applied (re-acked)
  std::uint64_t acks_sent = 0;
  std::uint64_t reports_sent = 0;
};

/// Reliable config channel: every kConfigPush carries a sequence number and
/// is retransmitted with exponential backoff until the device's kConfigAck
/// echoes it back, up to `max_retries` retries. Disabled => the seed's
/// fire-and-forget behavior.
struct RetransmitParams {
  bool enabled = true;
  double rto = 0.1;       // initial retransmission timeout (s)
  double backoff = 2.0;   // rto multiplier per retry
  int max_retries = 6;    // retries after the initial send
};

/// Wraps a device agent; owns it.
class ManagedDevice final : public sim::NodeAgent {
public:
  /// Exactly one of `proxy` / `middlebox` is set.
  ManagedDevice(net::NodeId node, net::IpAddress address,
                std::unique_ptr<core::ProxyAgent> proxy,
                std::unique_ptr<core::MiddleboxAgent> middlebox);

  void on_packet(sim::SimNetwork& net, packet::Packet pkt, net::NodeId from) override;

  /// Proxy only: package the current measurements as a report packet to
  /// `controller`, inject it, and clear the local counters (§III.C
  /// "periodically, all policy proxies send their measured traffic").
  /// Returns the encoded report size in bytes.
  std::size_t send_report(sim::SimNetwork& net, net::IpAddress controller);

  core::ProxyAgent* proxy() const noexcept { return proxy_.get(); }
  core::MiddleboxAgent* middlebox() const noexcept { return middlebox_.get(); }
  const ControlCounters& counters() const noexcept { return counters_; }

  /// Expose this device's control_* series plus the wrapped agent's series.
  void register_metrics(obs::MetricsRegistry& registry) const;
  std::uint64_t config_version() const noexcept {
    return proxy_ ? proxy_->config_version() : middlebox_->config_version();
  }

private:
  net::NodeId node_;
  net::IpAddress address_;
  std::unique_ptr<core::ProxyAgent> proxy_;
  std::unique_ptr<core::MiddleboxAgent> middlebox_;
  /// Highest config sequence applied (0 = none yet). Duplicates are re-acked
  /// without re-applying; lower sequences are rejected as stale.
  std::uint64_t last_seq_ = 0;
  ControlCounters counters_;
};

/// The controller host's agent.
class ControllerAgent final : public sim::NodeAgent {
public:
  ControllerAgent(net::NodeId node, net::IpAddress address, core::Controller& controller,
                  const net::GeneratedNetwork& network);

  void on_packet(sim::SimNetwork& net, packet::Packet pkt, net::NodeId from) override;

  /// Serialize per-device slices of `plan` and inject one kConfigPush per
  /// device whose slice CHANGED since the last push (differential
  /// distribution — unchanged devices keep their current config and version).
  /// Each push is sequenced and, when retransmission is enabled, resent with
  /// exponential backoff until acked (or abandoned after max_retries, which
  /// also voids the device's differential fingerprint so the next push_plan
  /// sends its full slice again). Returns the number of pushes sent.
  /// Increments the config version.
  std::size_t push_plan(sim::SimNetwork& net, const core::EnforcementPlan& plan);

  /// Devices acknowledge applied configs; lets the controller see rollout
  /// completion instead of assuming it.
  std::uint64_t acks_received() const noexcept { return acks_; }
  std::uint64_t pushes_sent() const noexcept { return pushes_sent_; }
  std::uint64_t pushes_skipped_unchanged() const noexcept { return pushes_skipped_; }
  std::uint64_t push_bytes_sent() const noexcept { return push_bytes_; }

  void set_retransmit(RetransmitParams params) { retransmit_ = params; }
  const RetransmitParams& retransmit() const noexcept { return retransmit_; }
  /// Pushes sent but not yet acked (0 after a completed rollout).
  std::size_t outstanding_pushes() const noexcept { return pending_.size(); }
  std::uint64_t retransmissions() const noexcept { return retransmissions_; }
  std::uint64_t pushes_abandoned() const noexcept { return pushes_abandoned_; }
  std::uint64_t stale_acks() const noexcept { return stale_acks_; }

  /// Forget the differential-push state for `device` (and any pending
  /// retransmission): the next push_plan sends its full slice. Called when a
  /// device is declared failed or revived — its applied config can no longer
  /// be assumed to match what was last sent.
  void forget_device(net::NodeId device);

  /// Failure recovery: recompute assignments against the deployment's
  /// current operational state and push the fresh plan. Propagates the
  /// controller's ContractViolation when a needed function has no live
  /// implementer left (callers decide whether that is fatal).
  core::EnforcementPlan recompute_and_push(
      sim::SimNetwork& net, core::StrategyKind strategy = core::StrategyKind::kHotPotato);

  /// The plan most recently passed to push_plan (empty before the first
  /// push) — what the controller currently believes the network enforces.
  const core::EnforcementPlan& last_plan() const noexcept { return last_plan_; }

  /// Wire the heartbeat monitor in: kHeartbeatAck packets addressed to the
  /// controller are handed to it (see control/health.hpp).
  void set_health_monitor(HealthMonitor* monitor) { health_ = monitor; }

  net::NodeId node() const noexcept { return node_; }

  /// The §III.C loop: build a TrafficMatrix from the reports received so
  /// far, compile a load-balanced plan, push it, and clear the report pool.
  /// Returns the compiled plan (for offline comparison in tests/benches).
  core::EnforcementPlan reoptimize_and_push(sim::SimNetwork& net);

  /// Matrix assembled from reports received so far.
  const workload::TrafficMatrix& collected() const noexcept { return collected_; }
  std::uint64_t reports_received() const noexcept { return reports_received_; }
  std::uint64_t malformed_messages() const noexcept { return malformed_; }
  std::uint64_t current_version() const noexcept { return version_; }
  net::IpAddress address() const noexcept { return address_; }

  /// Expose the push/ack/report bookkeeping as ctrl_* registry views.
  void register_metrics(obs::MetricsRegistry& registry) const;

private:
  struct PendingPush {
    std::uint64_t seq = 0;
    net::IpAddress device_addr;
    std::shared_ptr<const std::vector<std::uint8_t>> payload;
    int attempts = 1;  // sends so far (initial + retries)
  };

  void send_push(sim::SimNetwork& net, const PendingPush& push);
  void schedule_retransmit(sim::SimNetwork& net, std::uint32_t device_v, std::uint64_t seq,
                           double rto);

  net::NodeId node_;
  net::IpAddress address_;
  core::Controller& controller_;
  const net::GeneratedNetwork& network_;
  workload::TrafficMatrix collected_;
  std::uint64_t reports_received_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t acks_ = 0;
  std::uint64_t pushes_sent_ = 0;
  std::uint64_t pushes_skipped_ = 0;
  std::uint64_t push_bytes_ = 0;
  /// Last pushed slice per device, version field zeroed for comparison —
  /// the differential-push baseline.
  std::unordered_map<std::uint32_t, std::vector<std::uint8_t>> last_pushed_;
  RetransmitParams retransmit_;
  std::uint64_t push_seq_ = 0;  // global config-push sequence counter
  std::unordered_map<std::uint32_t, PendingPush> pending_;  // device node -> in-flight push
  std::unordered_map<std::uint32_t, std::uint32_t> addr_to_node_;  // device addr -> node
  std::uint64_t retransmissions_ = 0;
  std::uint64_t pushes_abandoned_ = 0;
  std::uint64_t stale_acks_ = 0;
  core::EnforcementPlan last_plan_;
  HealthMonitor* health_ = nullptr;
};

struct ControlPlane {
  ControllerAgent* controller = nullptr;
  net::NodeId controller_node;
  std::vector<ManagedDevice*> proxies;      // parallel to network.proxies
  std::vector<ManagedDevice*> middleboxes;  // parallel to deployment order
};

/// Create a controller host attached to the network core, wrap every proxy
/// and middlebox in a ManagedDevice initialized from `initial_plan`, and
/// attach everything to `simnet`. Mutates the topology (adds the controller
/// node), so call before computing routing tables.
net::NodeId add_controller_host(net::GeneratedNetwork& network);

ControlPlane install_control_plane(sim::SimNetwork& simnet, net::GeneratedNetwork& network,
                                   const core::Deployment& deployment,
                                   const policy::PolicyList& policies,
                                   core::Controller& controller, net::NodeId controller_node,
                                   const core::EnforcementPlan& initial_plan,
                                   const core::AgentOptions& options);

/// Register the controller's and every managed device's series.
void register_metrics(obs::MetricsRegistry& registry, const ControlPlane& plane);

}  // namespace sdmbox::control
