// Control-plane endpoints running INSIDE the simulated network.
//
// This closes the paper's architecture loop end to end (§III.A/C): the
// controller is an ordinary host on the topology; configuration reaches the
// SDM devices as packets (kConfigPush carrying a serialized DeviceConfig),
// and the proxies' traffic measurements travel back as kMeasurementReport
// packets. No side channels: if the network can't deliver a config, the
// device keeps enforcing its previous one — exactly the failure semantics a
// real deployment would have.
//
// Pieces:
//  * ManagedDevice — wraps a ProxyAgent/MiddleboxAgent; intercepts config
//    pushes addressed to the device, decodes and applies them, and (for
//    proxies) emits measurement reports on demand; everything else is
//    delegated to the wrapped agent untouched.
//  * ControllerAgent — collects measurement reports into a TrafficMatrix;
//    replan() is the single re-plan entry point (initial rollout, failure
//    recovery, §III.C measurement re-solve, drift-triggered re-solve): it
//    obtains a plan — compiled, precompiled, or locally PATCHED from the
//    last plan when the request scopes a kFailure replan to a single failed
//    node or link — serializes per-device slices and injects the changed
//    ones.
//  * install_control_plane — attaches a controller host node plus managed
//    devices over a whole GeneratedNetwork.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "control/codec.hpp"
#include "core/agents.hpp"
#include "obs/span.hpp"
#include "sim/network.hpp"
#include "stats/histogram.hpp"
#include "workload/traffic_matrix.hpp"

namespace sdmbox::control {

class HealthMonitor;

/// Deterministic model of LP solve cost, shared by the reoptimize loop's
/// reopt_* series and the controller's solve spans / conv_solve_latency:
/// measured wall time is machine-dependent, so exports derive solve cost
/// from the pivot count instead.
inline constexpr double kModeledSolveBaseMs = 0.5;
inline constexpr double kModeledMsPerPivot = 0.02;

inline double modeled_solve_ms(std::size_t pivots) noexcept {
  return kModeledSolveBaseMs + kModeledMsPerPivot * static_cast<double>(pivots);
}

struct ControlCounters {
  std::uint64_t configs_applied = 0;
  std::uint64_t configs_rejected = 0;   // malformed or stale (version or sequence)
  std::uint64_t configs_duplicate = 0;  // retransmitted pushes already applied (re-acked)
  std::uint64_t acks_sent = 0;
  std::uint64_t reports_sent = 0;
};

/// Reliable config channel: every kConfigPush carries a sequence number and
/// is retransmitted with exponential backoff until the device's kConfigAck
/// echoes it back, up to `max_retries` retries. Disabled => the seed's
/// fire-and-forget behavior.
struct RetransmitParams {
  bool enabled = true;
  double rto = 0.1;       // initial retransmission timeout (s)
  double backoff = 2.0;   // rto multiplier per retry
  int max_retries = 6;    // retries after the initial send
};

/// Wraps a device agent; owns it.
class ManagedDevice final : public sim::NodeAgent {
public:
  /// Exactly one of `proxy` / `middlebox` is set.
  ManagedDevice(net::NodeId node, net::IpAddress address,
                std::unique_ptr<core::ProxyAgent> proxy,
                std::unique_ptr<core::MiddleboxAgent> middlebox);

  void on_packet(sim::SimNetwork& net, packet::Packet pkt, net::NodeId from) override;

  /// Proxy only: package the current measurements as a report packet to
  /// `controller`, inject it, and clear the local counters (§III.C
  /// "periodically, all policy proxies send their measured traffic").
  /// Returns the encoded report size in bytes.
  std::size_t send_report(sim::SimNetwork& net, net::IpAddress controller);

  core::ProxyAgent* proxy() const noexcept { return proxy_.get(); }
  core::MiddleboxAgent* middlebox() const noexcept { return middlebox_.get(); }
  const ControlCounters& counters() const noexcept { return counters_; }

  /// Expose this device's control_* series plus the wrapped agent's series.
  void register_metrics(obs::MetricsRegistry& registry) const;
  std::uint64_t config_version() const noexcept {
    return proxy_ ? proxy_->config_version() : middlebox_->config_version();
  }

private:
  net::NodeId node_;
  net::IpAddress address_;
  std::unique_ptr<core::ProxyAgent> proxy_;
  std::unique_ptr<core::MiddleboxAgent> middlebox_;
  /// Highest config sequence applied (0 = none yet). Duplicates are re-acked
  /// without re-applying; lower sequences are rejected as stale.
  std::uint64_t last_seq_ = 0;
  ControlCounters counters_;
};

/// Why the controller is re-planning. Carried through ReplanRequest into
/// ReplanOutcome so callers (and metrics) can attribute every rollout.
enum class ReplanTrigger : std::uint8_t {
  kInitial,      // bootstrap: distribute a precompiled plan
  kFailure,      // heartbeat-driven recovery: recompute assignments first
  kMeasurement,  // periodic §III.C re-solve from collected proxy reports
  kDrift,        // ReoptimizePolicy decided observed load drifted enough
};

const char* to_string(ReplanTrigger t) noexcept;

/// One request to the unified ControllerAgent::replan() entry point.
/// Common shapes:
///   initial rollout    -> {kInitial, .plan = &plan}
///   full recovery      -> {kFailure, .strategy = s, .recompute_assignments = true}
///   scoped recovery    -> {kFailure, .failed_node = box}  (local patch)
///   §III.C re-solve    -> {kMeasurement} (defaults)
struct ReplanRequest {
  ReplanTrigger trigger = ReplanTrigger::kMeasurement;
  /// Strategy to compile when `plan` is null. kLoadBalanced solves Eq. (2)
  /// on the reports collected since the last solve.
  core::StrategyKind strategy = core::StrategyKind::kLoadBalanced;
  /// Recompute assignments against the deployment's current operational
  /// state before compiling (failure recovery). Propagates the controller's
  /// ContractViolation when a needed function has no live implementer.
  bool recompute_assignments = false;
  /// Distribute this precompiled plan instead of compiling one. Must outlive
  /// the call.
  const core::EnforcementPlan* plan = nullptr;
  /// Single-failure scope, kFailure only: when exactly one of these is set
  /// (and a plan has been distributed before), the replan PATCHES the
  /// current plan instead of recomputing + recompiling it — candidate sets
  /// are rebuilt only for devices whose chains traverse the failed element,
  /// and split shares pointing at a dead or evicted candidate are dropped
  /// (agents fall back to hot-potato there until the next solve). All other
  /// device slices stay byte-identical, so the differential push reaches
  /// only the affected devices. `failed_node` must already be marked failed
  /// in the deployment (HealthMonitor does this before calling). When no
  /// plan was ever distributed, the scope degrades to a full recompute.
  net::NodeId failed_node{};
  net::LinkId failed_link{};
};

/// What one replan() actually did.
struct ReplanOutcome {
  core::EnforcementPlan plan;  // the plan now considered current
  ReplanTrigger trigger = ReplanTrigger::kMeasurement;
  bool solved = false;      // an LP solve ran
  bool suppressed = false;  // zero-report measurement replan: no-op, plan == last_plan()
  std::size_t pushes_sent = 0;
  std::size_t pushes_skipped = 0;   // devices whose slice was unchanged
  std::uint64_t push_bytes = 0;     // rollout churn of this replan
  std::uint64_t reports_used = 0;   // proxy reports consumed by the solve
  double lambda = 0;                // LP objective (0 when no solve ran)
  std::size_t lp_pivots = 0;        // simplex pivots (0 when no solve ran)
  bool lp_warm_started = false;     // solve re-used the previous basis
  bool patched = false;             // plan locally patched, no recompile
  std::size_t devices_patched = 0;  // devices whose assignments the patch touched
  double solve_ms = 0;              // measured wall-clock compile time — NOT
                                    // deterministic; never feed into exports
};

/// The controller host's agent.
class ControllerAgent final : public sim::NodeAgent {
public:
  ControllerAgent(net::NodeId node, net::IpAddress address, core::Controller& controller,
                  const net::GeneratedNetwork& network);

  void on_packet(sim::SimNetwork& net, packet::Packet pkt, net::NodeId from) override;

  /// The one re-plan entry point: optionally recompute assignments, obtain a
  /// plan (precompiled, or compiled per `request.strategy`), and distribute
  /// it differentially — one sequenced kConfigPush per device whose slice
  /// CHANGED since the last push, retransmitted with exponential backoff
  /// until acked when retransmission is enabled (abandonment voids the
  /// device's differential fingerprint so the next replan resends its full
  /// slice).
  ///
  /// A kLoadBalanced compile with zero reports collected since the last
  /// solve is suppressed: solving Eq. (2) on an empty matrix would push a
  /// meaningless plan networkwide, so the call is a no-op returning
  /// last_plan() with outcome.suppressed set — except under kFailure, where
  /// a live plan is mandatory and the compile falls back to kHotPotato
  /// (equivalent to what an empty LB solve degenerates to at the agents,
  /// which fall back to hot-potato wherever ratios are absent).
  ReplanOutcome replan(sim::SimNetwork& net, const ReplanRequest& request);

  /// The controller this agent fronts (assignments, deployment, LP).
  const core::Controller& controller() const noexcept { return controller_; }

  /// Devices acknowledge applied configs; lets the controller see rollout
  /// completion instead of assuming it.
  std::uint64_t acks_received() const noexcept { return acks_; }
  std::uint64_t pushes_sent() const noexcept { return pushes_sent_; }
  std::uint64_t pushes_skipped_unchanged() const noexcept { return pushes_skipped_; }
  std::uint64_t push_bytes_sent() const noexcept { return push_bytes_; }

  void set_retransmit(RetransmitParams params) { retransmit_ = params; }
  const RetransmitParams& retransmit() const noexcept { return retransmit_; }
  /// Pushes sent but not yet acked (0 after a completed rollout).
  std::size_t outstanding_pushes() const noexcept { return pending_.size(); }
  std::uint64_t retransmissions() const noexcept { return retransmissions_; }
  std::uint64_t pushes_abandoned() const noexcept { return pushes_abandoned_; }
  std::uint64_t stale_acks() const noexcept { return stale_acks_; }

  /// Forget the differential-push state for `device` (and any pending
  /// retransmission): the next replan sends its full slice. Called when a
  /// device is declared failed or revived — its applied config can no longer
  /// be assumed to match what was last sent.
  void forget_device(net::NodeId device);

  /// The plan most recently distributed by replan() (empty before the first
  /// push) — what the controller currently believes the network enforces.
  const core::EnforcementPlan& last_plan() const noexcept { return last_plan_; }

  /// Wire the heartbeat monitor in: kHeartbeatAck packets addressed to the
  /// controller are handed to it (see control/health.hpp).
  void set_health_monitor(HealthMonitor* monitor) { health_ = monitor; }

  net::NodeId node() const noexcept { return node_; }

  /// Matrix assembled from reports received so far.
  const workload::TrafficMatrix& collected() const noexcept { return collected_; }
  std::uint64_t reports_received() const noexcept { return reports_received_; }
  /// Reports received since the last measurement/drift solve consumed the
  /// pool (the ReoptimizePolicy's min-reports gate reads this).
  std::uint64_t pending_reports() const noexcept { return pending_reports_; }
  std::uint64_t replans() const noexcept { return replans_; }
  /// Measurement replans turned into no-ops because zero reports had
  /// arrived since the last solve (the pool would have been empty).
  std::uint64_t replans_suppressed() const noexcept { return replans_suppressed_; }
  /// Failure replans resolved by the scoped patch path (no LP, no full
  /// recompute): only devices touching the failed element were repushed.
  std::uint64_t replans_patched() const noexcept { return replans_patched_; }
  std::uint64_t malformed_messages() const noexcept { return malformed_; }
  std::uint64_t current_version() const noexcept { return version_; }
  net::IpAddress address() const noexcept { return address_; }

  /// Expose the push/ack/report bookkeeping as ctrl_* registry views. When
  /// a span tracer is attached (set_spans BEFORE this call) additionally
  /// registers the conv_solve_latency / conv_push_latency /
  /// conv_total_unenforced_window histograms derived from spans.
  void register_metrics(obs::MetricsRegistry& registry) const;

  /// Attach a span tracer (+ the simulator clock, for span timestamps on
  /// paths that don't receive a SimNetwork, e.g. forget_device). Every
  /// replan then emits one `replan:<trigger>` span — parented under the
  /// episode on the tracer's context stack, if any — with `solve`,
  /// `plan_diff`, and per-device `push` children; push spans close at ack
  /// (gaining an `ack` instant child), supersede, abandonment, or
  /// forget_device. When the last outstanding push of a replan resolves,
  /// the replan span ends, conv_push_latency records the rollout time, and
  /// every episode the replan was acting for is closed — unenforced
  /// episodes record their full fault->plan-live window into
  /// conv_total_unenforced_window. Pure observation: attaching never
  /// changes protocol behavior.
  void set_spans(obs::SpanTracer* spans, const sim::Simulator* clock) noexcept {
    spans_ = spans;
    span_clock_ = clock;
  }

private:
  struct PendingPush {
    std::uint64_t seq = 0;
    net::IpAddress device_addr;
    std::shared_ptr<const std::vector<std::uint8_t>> payload;
    int attempts = 1;  // sends so far (initial + retries)
  };

  /// Span bookkeeping for one in-flight push, kept separate from the
  /// protocol's pending_ map so observation works even when retransmission
  /// is disabled (fire-and-forget pushes still have an ack to await).
  struct PushSpanState {
    std::uint64_t seq = 0;
    obs::SpanId push_span = 0;
    obs::SpanId replan_span = 0;
  };

  /// Open replan span -> rollout progress (outstanding pushes + the episode
  /// spans this replan acts for, snapshotted from the context stack).
  struct ReplanSpanState {
    double started_at = 0;
    std::size_t outstanding = 0;
    std::vector<obs::SpanId> episodes;
  };

  void send_push(sim::SimNetwork& net, const PendingPush& push);
  void schedule_retransmit(sim::SimNetwork& net, std::uint32_t device_v, std::uint64_t seq,
                           double rto);
  /// Differential distribution of `plan` (the push half of replan()).
  /// Returns the number of pushes sent; increments the config version.
  std::size_t distribute(sim::SimNetwork& net, const core::EnforcementPlan& plan);

  /// Close a push span (ack / supersede / abandon / forget) and, when its
  /// replan has no outstanding pushes left, complete the replan span.
  void resolve_push_span(std::uint32_t device_v, double now, const char* how, double attempts);
  void complete_replan_span(obs::SpanId replan_span, double now);

  net::NodeId node_;
  net::IpAddress address_;
  core::Controller& controller_;
  const net::GeneratedNetwork& network_;
  workload::TrafficMatrix collected_;
  std::uint64_t reports_received_ = 0;
  std::uint64_t pending_reports_ = 0;  // reports since the last consumed solve
  std::uint64_t replans_ = 0;
  std::uint64_t replans_suppressed_ = 0;
  std::uint64_t replans_patched_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t acks_ = 0;
  std::uint64_t pushes_sent_ = 0;
  std::uint64_t pushes_skipped_ = 0;
  std::uint64_t push_bytes_ = 0;
  /// Last pushed slice per device, version field zeroed for comparison —
  /// the differential-push baseline.
  std::unordered_map<std::uint32_t, std::vector<std::uint8_t>> last_pushed_;
  RetransmitParams retransmit_;
  std::uint64_t push_seq_ = 0;  // global config-push sequence counter
  std::unordered_map<std::uint32_t, PendingPush> pending_;  // device node -> in-flight push
  std::unordered_map<std::uint32_t, std::uint32_t> addr_to_node_;  // device addr -> node
  std::uint64_t retransmissions_ = 0;
  std::uint64_t pushes_abandoned_ = 0;
  std::uint64_t stale_acks_ = 0;
  core::EnforcementPlan last_plan_;
  HealthMonitor* health_ = nullptr;
  obs::SpanTracer* spans_ = nullptr;
  const sim::Simulator* span_clock_ = nullptr;
  std::unordered_map<std::uint32_t, PushSpanState> span_pending_;  // device node -> span state
  std::unordered_map<obs::SpanId, ReplanSpanState> replan_spans_;
  obs::SpanId current_replan_span_ = 0;  // set around distribute() by replan()
  stats::Histogram conv_solve_latency_;
  stats::Histogram conv_push_latency_;
  stats::Histogram conv_total_unenforced_window_;
};

struct ControlPlane {
  ControllerAgent* controller = nullptr;
  net::NodeId controller_node;
  std::vector<ManagedDevice*> proxies;      // parallel to network.proxies
  std::vector<ManagedDevice*> middleboxes;  // parallel to deployment order
};

/// Create a controller host attached to the network core, wrap every proxy
/// and middlebox in a ManagedDevice initialized from `initial_plan`, and
/// attach everything to `simnet`. Mutates the topology (adds the controller
/// node), so call before computing routing tables.
net::NodeId add_controller_host(net::GeneratedNetwork& network);

ControlPlane install_control_plane(sim::SimNetwork& simnet, net::GeneratedNetwork& network,
                                   const core::Deployment& deployment,
                                   const policy::PolicyList& policies,
                                   core::Controller& controller, net::NodeId controller_node,
                                   const core::EnforcementPlan& initial_plan,
                                   const core::AgentOptions& options);

/// Register the controller's and every managed device's series.
void register_metrics(obs::MetricsRegistry& registry, const ControlPlane& plane);

}  // namespace sdmbox::control
