// Closed-loop drift-triggered re-optimisation (§III.C, online).
//
// The offline pieces have existed for a while: proxies report measured
// traffic (control/endpoints), the controller can re-solve Eq. (2) from the
// collected matrix (ControllerAgent::replan), and the telemetry layer
// records per-middlebox load series (obs::EpochRecorder). This header closes
// the loop ON the simulator calendar:
//
//   ReoptimizePolicy --every epoch--> read per-middlebox load window from
//   the EpochRecorder --> DriftDetector compares its share vector against
//   the one the current plan was solved for --> when total-variation drift
//   exceeds the threshold (and hysteresis/min-report gates pass) -->
//   ControllerAgent::replan({kDrift}) re-solves the LP and differentially
//   pushes the new split ratios --> proxies are asked for fresh reports.
//
// The drift metric is the total-variation distance between NORMALIZED load
// vectors (shares of the total), so uniform traffic growth never triggers a
// re-solve — only a shift in how load is distributed across middleboxes
// does, which is exactly what invalidates the last LP solution.
//
// DriftDetector is pure (no sim, no agent) so the analytic epoch study and
// the bench ablation share the exact trigger logic with the online loop.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "control/endpoints.hpp"
#include "obs/timeseries.hpp"
#include "sim/simulator.hpp"

namespace sdmbox::control {

struct ReoptimizeParams {
  /// Simulated seconds between drift evaluations. Keep the EpochRecorder's
  /// period at or below this, or the loop reads stale snapshots.
  double epoch_period = 0.5;
  /// Total-variation drift (in [0, 1]) above which a re-solve triggers.
  double drift_threshold = 0.1;
  /// Hysteresis: a re-solve is allowed only once at least this many
  /// evaluations have passed since the previous solve. 1 disables it.
  int cooldown_epochs = 2;
  /// Proxy reports that must be pending at the controller before a solve
  /// may run (an Eq. (2) solve on a near-empty matrix is noise).
  std::uint64_t min_reports = 1;
  /// Ask every proxy for a fresh measurement report at the end of each
  /// epoch, so the next evaluation has current data. Disable when another
  /// component already drives reporting.
  bool request_reports = true;
};

/// Loop bookkeeping, exposable as reopt_* registry series. All counts are
/// deterministic for a fixed seed (modeled solve cost included — see
/// solve_ms_modeled below).
struct ReoptimizeCounters {
  std::uint64_t epochs = 0;               // evaluations run
  std::uint64_t triggered = 0;            // drift triggers that led to a solve
  std::uint64_t suppressed = 0;           // evaluations that did NOT solve
  std::uint64_t suppressed_drift = 0;     //   ... drift below threshold
  std::uint64_t suppressed_cooldown = 0;  //   ... inside the cooldown window
  std::uint64_t suppressed_reports = 0;   //   ... too few pending reports
  std::uint64_t solves = 0;               // LP solves actually run
  std::uint64_t solve_pivots = 0;         // simplex pivots across those solves
  std::uint64_t solve_warm_starts = 0;    // solves that re-used the last basis
  std::uint64_t pushes = 0;               // config pushes sent by those solves
  std::uint64_t push_bytes = 0;           // plan churn: bytes actually pushed
};

/// The pure trigger core: given an observed per-middlebox load vector and
/// the number of pending reports, decide whether to re-solve. Stateful only
/// in the reference share vector (what the current plan was solved for) and
/// the cooldown clock.
class DriftDetector {
public:
  enum class Decision : std::uint8_t {
    kSeeded,          // first usable window: reference established, no solve
    kTrigger,         // drift above threshold, gates passed — re-solve now
    kBelowThreshold,  // distribution close enough to the reference
    kCooldown,        // drift may be high, but the last solve is too recent
    kTooFewReports,   // not enough pending reports to trust a solve
  };

  DriftDetector(double threshold, int cooldown_epochs, std::uint64_t min_reports);

  /// Evaluate one epoch. `observed` is the raw (unnormalized) per-middlebox
  /// load window since the last solve; `pending_reports` gates the solve.
  /// Every call advances the cooldown clock.
  Decision evaluate(const std::vector<double>& observed, std::uint64_t pending_reports);

  /// Record that the caller re-solved on `observed`: it becomes the new
  /// reference distribution and the cooldown clock restarts.
  void mark_solved(const std::vector<double>& observed);

  /// Drift computed by the most recent evaluate() that got far enough to
  /// compare (0 before that).
  double last_drift() const noexcept { return last_drift_; }
  bool has_reference() const noexcept { return has_reference_; }
  double threshold() const noexcept { return threshold_; }

  /// Total-variation distance between the normalized forms of two raw load
  /// vectors: 0.5 * sum |a_i/sum(a) - b_i/sum(b)|, in [0, 1]. An empty
  /// (all-zero) vector against a non-empty one is maximal drift (1); two
  /// empty vectors agree (0).
  static double drift(const std::vector<double>& reference,
                      const std::vector<double>& observed);

private:
  double threshold_;
  int cooldown_;
  std::uint64_t min_reports_;
  std::vector<double> reference_;  // normalized shares the last solve saw
  bool has_reference_ = false;
  int epochs_since_solve_ = 0;
  double last_drift_ = 0;
};

/// The online loop. Owns nothing but its counters: the agent, control plane
/// and recorder must outlive it.
class ReoptimizePolicy {
public:
  ReoptimizePolicy(ControllerAgent& agent, const ControlPlane& plane,
                   const obs::EpochRecorder& recorder, ReoptimizeParams params = {});

  /// Start evaluating every params.epoch_period on the network's calendar
  /// (first evaluation one period from now). Idempotent while running.
  void start(sim::SimNetwork& net);
  void stop() noexcept;
  bool running() const noexcept { return periodic_ != nullptr && periodic_->active; }

  const ReoptimizeCounters& counters() const noexcept { return counters_; }
  const DriftDetector& detector() const noexcept { return detector_; }
  const ReoptimizeParams& params() const noexcept { return params_; }
  /// Measured wall-clock milliseconds spent in LP solves (human-facing
  /// only; NOT deterministic, never exported through the registry).
  double solve_ms_wall() const noexcept { return solve_ms_wall_; }
  /// Deterministic modeled solve cost in milliseconds (0.5 ms per solve +
  /// 0.02 ms per simplex pivot): the registry's reopt_solve_ms, chosen over
  /// wall time so same-seed runs export byte-identical evidence.
  double solve_ms_modeled() const noexcept { return solve_ms_modeled_; }

  /// One line per evaluation, for tests asserting trigger placement.
  struct Event {
    std::uint64_t epoch = 0;  // 1-based evaluation index
    double at = 0;            // simulated time
    DriftDetector::Decision decision{};
    double drift = 0;
  };
  const std::vector<Event>& log() const noexcept { return log_; }

  /// Expose the loop as reopt_* series ({subsystem: reoptimize} labels).
  void register_metrics(obs::MetricsRegistry& registry) const;

  /// Attach a span tracer: each drift trigger opens an `episode:drift` root
  /// span and parks it on the context stack so the replan's span tree roots
  /// under it (the controller closes the episode at plan-live time).
  void set_spans(obs::SpanTracer* spans) noexcept { spans_ = spans; }

private:
  void epoch(sim::SimNetwork& net);
  std::vector<double> cumulative_loads() const;

  ControllerAgent& agent_;
  obs::SpanTracer* spans_ = nullptr;
  std::vector<ManagedDevice*> proxies_;
  std::vector<ManagedDevice*> middleboxes_;
  const obs::EpochRecorder& recorder_;
  ReoptimizeParams params_;
  DriftDetector detector_;
  ReoptimizeCounters counters_;
  std::vector<double> base_;  // cumulative loads at the last reference reset
  double solve_ms_wall_ = 0;
  double solve_ms_modeled_ = 0;
  std::vector<Event> log_;
  std::shared_ptr<sim::Simulator::Periodic> periodic_;
};

const char* to_string(DriftDetector::Decision d) noexcept;

}  // namespace sdmbox::control
