// Closed-loop drift-triggered re-optimisation (§III.C, online).
//
// The offline pieces have existed for a while: proxies report measured
// traffic (control/endpoints), the controller can re-solve Eq. (2) from the
// collected matrix (ControllerAgent::replan), and the telemetry layer
// records per-middlebox load series (obs::EpochRecorder). This header closes
// the loop ON the simulator calendar:
//
//   ReoptimizePolicy --every epoch--> read per-middlebox load window from
//   the EpochRecorder --> DriftDetector compares its share vector against
//   the one the current plan was solved for --> when total-variation drift
//   exceeds the threshold (and hysteresis/min-report gates pass) -->
//   ControllerAgent::replan({kDrift}) re-solves the LP and differentially
//   pushes the new split ratios --> proxies are asked for fresh reports.
//
// The drift metric is the total-variation distance between NORMALIZED load
// vectors (shares of the total), so uniform traffic growth never triggers a
// re-solve — only a shift in how load is distributed across middleboxes
// does, which is exactly what invalidates the last LP solution.
//
// DriftDetector is pure (no sim, no agent) so the analytic epoch study and
// the bench ablation share the exact trigger logic with the online loop.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "control/endpoints.hpp"
#include "control/reoptimize_options.hpp"
#include "obs/timeseries.hpp"
#include "sim/simulator.hpp"

namespace sdmbox::control {

/// Loop bookkeeping, exposable as reopt_* registry series. All counts are
/// deterministic for a fixed seed (modeled solve cost included — see
/// solve_ms_modeled below).
struct ReoptimizeCounters {
  std::uint64_t epochs = 0;               // evaluations run
  std::uint64_t triggered = 0;            // drift triggers that led to a solve
  std::uint64_t triggered_predicted = 0;  //   ... of which trend-extrapolation fired early
  std::uint64_t suppressed = 0;           // evaluations that did NOT solve
  std::uint64_t suppressed_drift = 0;     //   ... drift below threshold
  std::uint64_t suppressed_cooldown = 0;  //   ... inside the cooldown window
  std::uint64_t suppressed_reports = 0;   //   ... too few pending reports
  std::uint64_t solves = 0;               // LP solves actually run
  std::uint64_t solve_pivots = 0;         // simplex pivots across those solves
  std::uint64_t solve_warm_starts = 0;    // solves that re-used the last basis
  std::uint64_t pushes = 0;               // config pushes sent by those solves
  std::uint64_t push_bytes = 0;           // plan churn: bytes actually pushed
};

/// The pure trigger core: given an observed per-middlebox load vector and
/// the number of pending reports, decide whether to re-solve. Stateful in
/// the reference share vector (what the current plan was solved for), the
/// cooldown clock, and — for the adaptive/predictive modes — a running
/// noise estimate of the share vector and the previous window's shares.
class DriftDetector {
public:
  enum class Decision : std::uint8_t {
    kSeeded,            // first usable window: reference established, no solve
    kTrigger,           // drift above threshold, gates passed — re-solve now
    kTriggerPredicted,  // current drift below, but the one-epoch-ahead
                        // extrapolation crosses threshold — re-solve early
    kBelowThreshold,    // distribution close enough to the reference
    kCooldown,          // drift may be high, but the last solve is too recent
    kTooFewReports,     // not enough pending reports to trust a solve
  };

  DriftDetector(double threshold, int cooldown_epochs, std::uint64_t min_reports);
  /// All knobs from one ReoptimizeOptions (epoch_period/request_reports are
  /// loop concerns and ignored here).
  explicit DriftDetector(const ReoptimizeOptions& options);

  /// Per-function index groups over the observed vector (the middleboxes
  /// implementing each deployed function). When set, drift becomes the max
  /// of the global total-variation distance and each group's own TV
  /// distance — a shift confined to one function's implementers triggers
  /// even when it washes out of the global share vector.
  void set_groups(std::vector<std::vector<std::size_t>> groups) {
    groups_ = std::move(groups);
  }

  /// Evaluate one epoch. `observed` is the raw (unnormalized) per-middlebox
  /// load window since the last solve; `pending_reports` gates the solve.
  /// Every call advances the cooldown clock.
  Decision evaluate(const std::vector<double>& observed, std::uint64_t pending_reports);

  /// Record that the caller re-solved on `observed`: it becomes the new
  /// reference distribution and the cooldown clock restarts.
  void mark_solved(const std::vector<double>& observed);

  /// Drift computed by the most recent evaluate() that got far enough to
  /// compare (0 before that).
  double last_drift() const noexcept { return last_drift_; }
  /// Drift of the one-epoch-ahead extrapolation (predictive mode only; 0
  /// otherwise).
  double last_predicted_drift() const noexcept { return last_predicted_drift_; }
  bool has_reference() const noexcept { return has_reference_; }
  double threshold() const noexcept { return opt_.drift_threshold; }
  /// Threshold the last evaluate() actually compared against: the base
  /// threshold, raised to noise_multiplier * noise in adaptive mode.
  double effective_threshold() const noexcept { return effective_threshold_; }
  /// Running noise estimate: half the summed per-component stddev of the
  /// observed share vectors (commensurable with total-variation drift).
  double share_noise() const noexcept;

  /// Total-variation distance between the normalized forms of two raw load
  /// vectors: 0.5 * sum |a_i/sum(a) - b_i/sum(b)|, in [0, 1]. An empty
  /// (all-zero) vector against a non-empty one is maximal drift (1); two
  /// empty vectors agree (0).
  static double drift(const std::vector<double>& reference,
                      const std::vector<double>& observed);

private:
  /// Max of the global TV distance and every group's own TV distance.
  double drift_grouped(const std::vector<double>& reference,
                       const std::vector<double>& observed) const;
  void update_noise(const std::vector<double>& shares);

  ReoptimizeOptions opt_;
  std::vector<std::vector<std::size_t>> groups_;
  std::vector<double> reference_;  // normalized shares the last solve saw
  bool has_reference_ = false;
  int epochs_since_solve_ = 0;
  double last_drift_ = 0;
  double last_predicted_drift_ = 0;
  double effective_threshold_ = 0;
  std::vector<double> prev_shares_;  // previous usable window (trend base)
  // Welford running stats over per-middlebox shares, for the noise estimate.
  std::vector<double> share_mean_;
  std::vector<double> share_m2_;
  std::uint64_t share_samples_ = 0;
};

/// The online loop. Owns nothing but its counters: the agent, control plane
/// and recorder must outlive it.
class ReoptimizePolicy {
public:
  ReoptimizePolicy(ControllerAgent& agent, const ControlPlane& plane,
                   const obs::EpochRecorder& recorder, ReoptimizeOptions params = {});

  /// Start evaluating every params.epoch_period on the network's calendar
  /// (first evaluation one period from now). Idempotent while running.
  void start(sim::SimNetwork& net);
  void stop() noexcept;
  bool running() const noexcept { return periodic_ != nullptr && periodic_->active; }

  const ReoptimizeCounters& counters() const noexcept { return counters_; }
  const DriftDetector& detector() const noexcept { return detector_; }
  const ReoptimizeOptions& params() const noexcept { return params_; }
  /// Measured wall-clock milliseconds spent in LP solves (human-facing
  /// only; NOT deterministic, never exported through the registry).
  double solve_ms_wall() const noexcept { return solve_ms_wall_; }
  /// Deterministic modeled solve cost in milliseconds (0.5 ms per solve +
  /// 0.02 ms per simplex pivot): the registry's reopt_solve_ms, chosen over
  /// wall time so same-seed runs export byte-identical evidence.
  double solve_ms_modeled() const noexcept { return solve_ms_modeled_; }

  /// One line per evaluation, for tests asserting trigger placement.
  struct Event {
    std::uint64_t epoch = 0;  // 1-based evaluation index
    double at = 0;            // simulated time
    DriftDetector::Decision decision{};
    double drift = 0;
  };
  const std::vector<Event>& log() const noexcept { return log_; }

  /// Expose the loop as reopt_* series ({subsystem: reoptimize} labels).
  void register_metrics(obs::MetricsRegistry& registry) const;

  /// Attach a span tracer: each drift trigger opens an `episode:drift` root
  /// span and parks it on the context stack so the replan's span tree roots
  /// under it (the controller closes the episode at plan-live time).
  void set_spans(obs::SpanTracer* spans) noexcept { spans_ = spans; }

private:
  void epoch(sim::SimNetwork& net);
  std::vector<double> cumulative_loads() const;

  ControllerAgent& agent_;
  obs::SpanTracer* spans_ = nullptr;
  std::vector<ManagedDevice*> proxies_;
  std::vector<ManagedDevice*> middleboxes_;
  const obs::EpochRecorder& recorder_;
  ReoptimizeOptions params_;
  DriftDetector detector_;
  ReoptimizeCounters counters_;
  std::vector<double> base_;  // cumulative loads at the last reference reset
  double solve_ms_wall_ = 0;
  double solve_ms_modeled_ = 0;
  std::vector<Event> log_;
  std::shared_ptr<sim::Simulator::Periodic> periodic_;
};

const char* to_string(DriftDetector::Decision d) noexcept;

}  // namespace sdmbox::control
