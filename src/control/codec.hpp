// Serialization of control-plane messages.
//
// DeviceConfig rides in kConfigPush packets (controller -> device);
// MeasurementReport rides in kMeasurementReport packets (proxy ->
// controller). Decoding is all-or-nothing: malformed bytes yield nullopt,
// never a partially-applied configuration.
#pragma once

#include <optional>
#include <vector>

#include "core/plan.hpp"

namespace sdmbox::control {

std::vector<std::uint8_t> encode_device_config(const core::DeviceConfig& config);
std::optional<core::DeviceConfig> decode_device_config(const std::vector<std::uint8_t>& bytes);

/// One proxy's traffic report: per-(policy, destination subnet) outbound
/// packet volumes over the last measurement period (§III.C).
struct MeasurementReport {
  int src_subnet = -1;
  struct Line {
    std::uint32_t policy;
    std::int32_t dst_subnet;
    std::uint64_t packets;
  };
  std::vector<Line> lines;
};

std::vector<std::uint8_t> encode_measurement_report(const MeasurementReport& report);
std::optional<MeasurementReport> decode_measurement_report(
    const std::vector<std::uint8_t>& bytes);

}  // namespace sdmbox::control
