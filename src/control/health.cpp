#include "control/health.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/log.hpp"

namespace sdmbox::control {

HealthMonitor::HealthMonitor(ControllerAgent& agent, core::Deployment& deployment,
                             const net::GeneratedNetwork& network, HealthParams params)
    : agent_(agent), deployment_(deployment), params_(params) {
  SDM_CHECK(params_.probe_period > 0);
  SDM_CHECK(params_.miss_threshold >= 1);
  for (const core::MiddleboxInfo& m : deployment.middleboxes()) {
    devices_.push_back(Device{m.node, network.topo.node(m.node).address, false});
  }
  if (params_.monitor_proxies) {
    for (const net::NodeId p : network.proxies) {
      devices_.push_back(Device{p, network.topo.node(p).address, true});
    }
  }
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    by_addr_[devices_[i].address.value()] = i;
  }
  agent_.set_health_monitor(this);
}

void HealthMonitor::start(sim::SimNetwork& net) {
  if (running_) return;
  running_ = true;
  round(net);
}

bool HealthMonitor::declared_failed(net::NodeId node) const {
  for (const Device& d : devices_) {
    if (d.node == node) return d.declared_failed;
  }
  return false;
}

bool HealthMonitor::declare(sim::SimNetwork& net, Device& device, sim::SimTime now) {
  device.declared_failed = true;
  ++counters_.failures_declared;
  const bool false_positive = net.node_up(device.node);
  if (false_positive) ++counters_.false_positives;
  counters_.detection_latency_total += now - device.last_reply_at;
  log_.push_back(Event{device.node, now, true});
  bool pushed_context = false;
  if (spans_ != nullptr) {
    const std::string& name = net.topology().node(device.node).name;
    // Join the fault injector's episode tree via the node-id correlation; a
    // declaration with no open fault episode (false positive, or a crash
    // before the tracer attached) roots its own.
    obs::SpanId episode = spans_->correlated_open(device.node.v);
    if (episode == 0) {
      episode = spans_->begin("episode:declared", device.last_reply_at, 0, name, "health");
      spans_->set_attr(episode, "node", static_cast<double>(device.node.v));
      spans_->set_attr(episode, "unenforced", false_positive ? 0 : 1);
      spans_->correlate(device.node.v, episode);
    }
    // The detection span covers the silent interval: last heard from ->
    // declared failed. Its duration IS the detection latency the registry's
    // health_detection_latency_total sums.
    const obs::SpanId detect = spans_->begin("detect", device.last_reply_at, episode, name, "health");
    spans_->set_attr(detect, "misses", device.misses);
    spans_->set_attr(detect, "false_positive", false_positive ? 1 : 0);
    spans_->end(detect, now);
    conv_detection_latency_.add(now - device.last_reply_at);
    spans_->push_context(episode);
    pushed_context = true;
  }
  SDM_LOG_INFO("health", "declared " << net.topology().node(device.node).name
                                     << " failed after " << device.misses << " silent rounds");
  // Deliberately keep the device's differential fingerprint: pushing its
  // full slice now would only feed the retransmission machinery a guaranteed
  // abandonment. The fingerprint is voided on revival (forcing a full
  // resync) and by push abandonment itself.
  return pushed_context;
}

void HealthMonitor::round(sim::SimNetwork& net) {
  if (!running_) return;
  const sim::SimTime now = net.simulator().now();
  std::vector<net::NodeId> newly_failed;  // middleboxes marked failed this round
  int contexts_pushed = 0;
  for (Device& d : devices_) {
    if (d.seq_sent > d.seq_acked) {
      ++d.misses;
      if (!d.declared_failed && d.misses >= params_.miss_threshold) {
        if (declare(net, d, now)) ++contexts_pushed;
        // Proxies can't be routed around (they ARE the subnet's enforcement
        // point); only middlebox failures change the assignment problem.
        if (!d.is_proxy && deployment_.set_failed(d.node, true)) {
          newly_failed.push_back(d.node);
        }
      }
    } else {
      d.misses = 0;
    }
    packet::Packet probe;
    probe.kind = packet::PacketKind::kHeartbeat;
    probe.inner.src = agent_.address();
    probe.inner.dst = d.address;
    probe.inner.protocol = packet::kProtoUdp;
    probe.payload_bytes = 8;
    probe.control_seq = ++d.seq_sent;
    ++counters_.probes_sent;
    net.inject(agent_.node(), std::move(probe), now);
  }
  if (!newly_failed.empty() && params_.auto_repair) {
    // One dead middlebox -> patch the plan around it; anything more complex
    // falls back to the full recompute path.
    repush(net, params_.patch_single_failure && newly_failed.size() == 1 ? newly_failed.front()
                                                                         : net::NodeId{});
  }
  // The episode contexts only existed so the repush's replan span could
  // parent under (and later close) them.
  for (; contexts_pushed > 0; --contexts_pushed) {
    if (spans_ != nullptr) spans_->pop_context();
  }
  net.simulator().schedule_in(params_.probe_period, [this, &net] { round(net); });
}

void HealthMonitor::on_probe_reply(sim::SimNetwork& net, net::IpAddress from,
                                   std::uint64_t seq) {
  const auto it = by_addr_.find(from.value());
  if (it == by_addr_.end()) return;  // not one of ours (e.g. a peer-probe ack)
  Device& d = devices_[it->second];
  ++counters_.replies_received;
  if (seq > d.seq_acked) d.seq_acked = seq;
  d.misses = 0;
  d.last_reply_at = net.simulator().now();
  if (!d.declared_failed) return;

  // A declared-dead device answered: revive it and (for middleboxes) fold it
  // back into the assignment problem.
  d.declared_failed = false;
  ++counters_.revivals_declared;
  log_.push_back(Event{d.node, d.last_reply_at, false});
  SDM_LOG_INFO("health", "revived " << net.topology().node(d.node).name);
  agent_.forget_device(d.node);
  // The restart episode (opened by the fault injector, if any) is the
  // revival's causal root: the resync replan parents under it.
  obs::SpanId episode = 0;
  if (spans_ != nullptr) {
    episode = spans_->correlated_open(d.node.v);
    if (episode != 0) spans_->push_context(episode);
  }
  if (!d.is_proxy && deployment_.set_failed(d.node, false) && params_.auto_repair) {
    repush(net);
  }
  if (episode != 0) spans_->pop_context();
}

void HealthMonitor::repush(sim::SimNetwork& net, net::NodeId failed_node) {
  try {
    ReplanRequest request;
    request.trigger = ReplanTrigger::kFailure;
    request.strategy = params_.repush_strategy;
    if (failed_node.valid()) {
      request.failed_node = failed_node;
    } else {
      request.recompute_assignments = true;
    }
    agent_.replan(net, request);
    ++counters_.repushes;
  } catch (const ContractViolation&) {
    // Every live implementer of some needed function is gone — no valid plan
    // exists. Keep the current config and retry on the next state change.
    ++counters_.recompute_refused;
  }
}

void HealthMonitor::register_metrics(obs::MetricsRegistry& registry) const {
  const obs::Labels labels{{"subsystem", "health"}};
  registry.expose_counter("health_probes_sent", labels, &counters_.probes_sent);
  registry.expose_counter("health_replies_received", labels, &counters_.replies_received);
  registry.expose_counter("health_failures_declared", labels, &counters_.failures_declared);
  registry.expose_counter("health_revivals_declared", labels, &counters_.revivals_declared);
  registry.expose_counter("health_false_positives", labels, &counters_.false_positives);
  registry.expose_counter("health_repushes", labels, &counters_.repushes);
  registry.expose_counter("health_recompute_refused", labels, &counters_.recompute_refused);
  registry.expose_gauge("health_detection_latency_total_s", labels,
                        [this] { return counters_.detection_latency_total; });
  registry.expose_gauge("health_mean_detection_latency_s", labels,
                        [this] { return mean_detection_latency(); });
  // conv_* series exist only when the span machinery is attached, so an
  // unattached run's metrics dump stays byte-identical (the acceptance
  // contract for "attaching the tracer perturbs nothing").
  if (spans_ != nullptr) {
    registry.expose_histogram("conv_detection_latency", labels, &conv_detection_latency_);
  }
}

}  // namespace sdmbox::control
