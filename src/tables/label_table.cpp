#include "tables/label_table.hpp"

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace sdmbox::tables {

LabelTable::LabelTable(SimTime idle_timeout) : idle_timeout_(idle_timeout) {
  SDM_CHECK(idle_timeout > 0);
}

std::uint32_t LabelTable::find_slot(const LabelKey& key, std::uint64_t hash) const noexcept {
  return index_.find(hash, [&](std::uint32_t slot) { return slots_[slot].key == key; });
}

void LabelTable::erase_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  index_.erase(s.hash, idx);
  s.entry = LabelEntry{};  // release the action list now, not at slot reuse
  s.live = false;
  s.free_next = free_head_;
  free_head_ = idx;
  --size_;
}

LabelEntry& LabelTable::insert(const LabelKey& key, std::uint64_t hash, LabelEntry entry,
                               SimTime now) {
  SDM_DCHECK(hash == hash_of(key));
  entry.last_used = now;
  std::uint32_t idx = find_slot(key, hash);
  if (idx != kNil) {
    slots_[idx].entry = std::move(entry);
    return slots_[idx].entry;
  }
  if (free_head_ != kNil) {
    idx = free_head_;
    free_head_ = slots_[idx].free_next;
  } else {
    idx = slots_.push();
  }
  Slot& s = slots_[idx];
  s.key = key;
  s.entry = std::move(entry);
  s.hash = hash;
  s.live = true;
  index_.insert(hash, idx);
  ++size_;
  return s.entry;
}

LabelEntry* LabelTable::lookup(const LabelKey& key, std::uint64_t hash, SimTime now) {
  const std::uint32_t idx = find_slot(key, hash);
  if (idx == kNil) {
    ++stats_.misses;
    return nullptr;
  }
  if (now - slots_[idx].entry.last_used > idle_timeout_) {
    erase_slot(idx);
    ++stats_.expirations;
    ++stats_.misses;
    return nullptr;
  }
  slots_[idx].entry.last_used = now;
  ++stats_.hits;
  return &slots_[idx].entry;
}

bool LabelTable::erase(const LabelKey& key) {
  const std::uint32_t idx = find_slot(key, hash_of(key));
  if (idx == kNil) return false;
  erase_slot(idx);
  ++stats_.invalidations;
  return true;
}

std::vector<std::pair<LabelKey, LabelEntry>> LabelTable::invalidate_next_hop(
    net::IpAddress next_hop) {
  std::vector<std::pair<LabelKey, LabelEntry>> removed;
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (s.live && s.entry.next_hop && *s.entry.next_hop == next_hop) {
      removed.emplace_back(s.key, std::move(s.entry));
      erase_slot(i);
      ++stats_.invalidations;
    }
  }
  return removed;
}

void LabelTable::expire_idle(SimTime now) {
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].live && now - slots_[i].entry.last_used > idle_timeout_) {
      erase_slot(i);
      ++stats_.expirations;
    }
  }
}

void LabelTable::register_metrics(obs::MetricsRegistry& registry,
                                  const obs::Labels& base) const {
  registry.expose_counter("label_table_hits", base, &stats_.hits);
  registry.expose_counter("label_table_misses", base, &stats_.misses);
  registry.expose_counter("label_table_expirations", base, &stats_.expirations);
  registry.expose_counter("label_table_invalidations", base, &stats_.invalidations);
  registry.expose_gauge("label_table_size", base, [this] { return static_cast<double>(size_); });
}

}  // namespace sdmbox::tables
