#include "tables/label_table.hpp"

#include "util/check.hpp"

namespace sdmbox::tables {

LabelTable::LabelTable(SimTime idle_timeout) : idle_timeout_(idle_timeout) {
  SDM_CHECK(idle_timeout > 0);
}

LabelEntry& LabelTable::insert(const LabelKey& key, LabelEntry entry, SimTime now) {
  entry.last_used = now;
  auto [it, unused_inserted] = entries_.insert_or_assign(key, std::move(entry));
  return it->second;
}

LabelEntry* LabelTable::lookup(const LabelKey& key, SimTime now) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (now - it->second.last_used > idle_timeout_) {
    entries_.erase(it);
    ++stats_.expirations;
    ++stats_.misses;
    return nullptr;
  }
  it->second.last_used = now;
  ++stats_.hits;
  return &it->second;
}

void LabelTable::expire_idle(SimTime now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now - it->second.last_used > idle_timeout_) {
      it = entries_.erase(it);
      ++stats_.expirations;
    } else {
      ++it;
    }
  }
}

}  // namespace sdmbox::tables
