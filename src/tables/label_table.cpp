#include "tables/label_table.hpp"

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace sdmbox::tables {

LabelTable::LabelTable(SimTime idle_timeout) : idle_timeout_(idle_timeout) {
  SDM_CHECK(idle_timeout > 0);
}

LabelEntry& LabelTable::insert(const LabelKey& key, LabelEntry entry, SimTime now) {
  entry.last_used = now;
  auto [it, unused_inserted] = entries_.insert_or_assign(key, std::move(entry));
  return it->second;
}

LabelEntry* LabelTable::lookup(const LabelKey& key, SimTime now) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (now - it->second.last_used > idle_timeout_) {
    entries_.erase(it);
    ++stats_.expirations;
    ++stats_.misses;
    return nullptr;
  }
  it->second.last_used = now;
  ++stats_.hits;
  return &it->second;
}

bool LabelTable::erase(const LabelKey& key) {
  if (entries_.erase(key) == 0) return false;
  ++stats_.invalidations;
  return true;
}

std::vector<std::pair<LabelKey, LabelEntry>> LabelTable::invalidate_next_hop(
    net::IpAddress next_hop) {
  std::vector<std::pair<LabelKey, LabelEntry>> removed;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.next_hop && *it->second.next_hop == next_hop) {
      removed.emplace_back(it->first, std::move(it->second));
      it = entries_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
  return removed;
}

void LabelTable::expire_idle(SimTime now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now - it->second.last_used > idle_timeout_) {
      it = entries_.erase(it);
      ++stats_.expirations;
    } else {
      ++it;
    }
  }
}

void LabelTable::register_metrics(obs::MetricsRegistry& registry,
                                  const obs::Labels& base) const {
  registry.expose_counter("label_table_hits", base, &stats_.hits);
  registry.expose_counter("label_table_misses", base, &stats_.misses);
  registry.expose_counter("label_table_expirations", base, &stats_.expirations);
  registry.expose_counter("label_table_invalidations", base, &stats_.invalidations);
  registry.expose_gauge("label_table_size", base,
                        [this] { return static_cast<double>(entries_.size()); });
}

}  // namespace sdmbox::tables
