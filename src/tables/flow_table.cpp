#include "tables/flow_table.hpp"

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace sdmbox::tables {

FlowTable::FlowTable(SimTime idle_timeout, std::size_t capacity)
    : idle_timeout_(idle_timeout), capacity_(capacity) {
  SDM_CHECK(idle_timeout > 0);
  SDM_CHECK(capacity >= 1);
}

std::uint32_t FlowTable::find_slot(const packet::FlowId& f, std::uint64_t hash) const noexcept {
  return index_.find(hash, [&](std::uint32_t slot) { return slots_[slot].entry.flow == f; });
}

void FlowTable::lru_unlink(std::uint32_t idx) noexcept {
  Slot& s = slots_[idx];
  if (s.lru_prev != kNil) {
    slots_[s.lru_prev].lru_next = s.lru_next;
  } else {
    lru_head_ = s.lru_next;
  }
  if (s.lru_next != kNil) {
    slots_[s.lru_next].lru_prev = s.lru_prev;
  } else {
    lru_tail_ = s.lru_prev;
  }
}

void FlowTable::lru_push_front(std::uint32_t idx) noexcept {
  Slot& s = slots_[idx];
  s.lru_prev = kNil;
  s.lru_next = lru_head_;
  if (lru_head_ != kNil) slots_[lru_head_].lru_prev = idx;
  lru_head_ = idx;
  if (lru_tail_ == kNil) lru_tail_ = idx;
}

void FlowTable::touch(std::uint32_t idx, SimTime now) noexcept {
  slots_[idx].entry.last_used = now;
  if (lru_head_ == idx) return;
  lru_unlink(idx);
  lru_push_front(idx);
}

void FlowTable::erase_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  if (const std::uint16_t label = s.entry.label; label != 0) {
    --live_labels_;
    label_in_use_[label] = false;
  }
  lru_unlink(idx);
  index_.erase(s.hash, idx);
  s.entry = FlowEntry{};  // release the action list now, not at slot reuse
  s.live = false;
  s.lru_next = free_head_;
  free_head_ = idx;
  --size_;
}

FlowEntry* FlowTable::lookup(const packet::FlowId& f, std::uint64_t hash, SimTime now) {
  const std::uint32_t idx = find_slot(f, hash);
  if (idx == kNil) {
    ++stats_.misses;
    return nullptr;
  }
  if (now - slots_[idx].entry.last_used > idle_timeout_) {
    // Lazy soft-state expiry: the entry died of idleness before this packet.
    erase_slot(idx);
    ++stats_.expirations;
    ++stats_.misses;
    return nullptr;
  }
  touch(idx, now);
  ++stats_.hits;
  if (slots_[idx].entry.is_negative()) ++stats_.negative_hits;
  return &slots_[idx].entry;
}

FlowEntry& FlowTable::insert(const packet::FlowId& f, std::uint64_t hash, policy::PolicyId policy,
                             policy::ActionList actions, SimTime now) {
  SDM_DCHECK(hash == hash_of(f));
  std::uint32_t idx = find_slot(f, hash);
  if (idx != kNil) {
    Slot& s = slots_[idx];
    if (const std::uint16_t label = s.entry.label; label != 0) {
      --live_labels_;
      label_in_use_[label] = false;
    }
    s.entry = FlowEntry{f, policy, std::move(actions), 0, false, -1, now};
    touch(idx, now);
    return s.entry;
  }
  if (size_ >= capacity_) evict_for_space();
  if (free_head_ != kNil) {
    idx = free_head_;
    free_head_ = slots_[idx].lru_next;
  } else {
    idx = slots_.push();
  }
  Slot& s = slots_[idx];
  s.entry = FlowEntry{f, policy, std::move(actions), 0, false, -1, now};
  s.hash = hash;
  s.live = true;
  lru_push_front(idx);
  index_.insert(hash, idx);
  ++size_;
  return s.entry;
}

void FlowTable::evict_for_space() {
  SDM_CHECK(lru_tail_ != kNil);
  erase_slot(lru_tail_);
  ++stats_.evictions;
}

std::uint16_t FlowTable::allocate_label(FlowEntry& entry) {
  SDM_CHECK_MSG(entry.label == 0, "entry already labeled");
  SDM_CHECK_MSG(live_labels_ < 0xffff, "label space exhausted");
  // Labels are locally unique among live entries; 0 is reserved for
  // "no label". Scan the rolling counter forward until a free value; the
  // bitmap makes each probe O(1) and termination follows from
  // live_labels_ < 0xffff.
  for (;;) {
    const std::uint16_t candidate = next_label_;
    next_label_ = static_cast<std::uint16_t>(next_label_ == 0xffff ? 1 : next_label_ + 1);
    if (!label_in_use_[candidate]) {
      label_in_use_[candidate] = true;
      entry.label = candidate;
      ++live_labels_;
      return candidate;
    }
  }
}

bool FlowTable::confirm_label(const packet::FlowId& f, SimTime now) {
  const std::uint32_t idx = find_slot(f, hash_of(f));
  if (idx == kNil) return false;
  if (now - slots_[idx].entry.last_used > idle_timeout_) {
    erase_slot(idx);
    ++stats_.expirations;
    return false;
  }
  touch(idx, now);
  slots_[idx].entry.label_switched = true;
  return true;
}

bool FlowTable::erase(const packet::FlowId& f) {
  const std::uint32_t idx = find_slot(f, hash_of(f));
  if (idx == kNil) return false;
  erase_slot(idx);
  ++stats_.invalidations;
  return true;
}

void FlowTable::expire_idle(SimTime now) {
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].live && now - slots_[i].entry.last_used > idle_timeout_) {
      erase_slot(i);
      ++stats_.expirations;
    }
  }
}

void FlowTable::register_metrics(obs::MetricsRegistry& registry,
                                 const obs::Labels& base) const {
  registry.expose_counter("flow_cache_hits", base, &stats_.hits);
  registry.expose_counter("flow_cache_negative_hits", base, &stats_.negative_hits);
  registry.expose_counter("flow_cache_misses", base, &stats_.misses);
  registry.expose_counter("flow_cache_expirations", base, &stats_.expirations);
  registry.expose_counter("flow_cache_evictions", base, &stats_.evictions);
  registry.expose_counter("flow_cache_invalidations", base, &stats_.invalidations);
  registry.expose_gauge("flow_cache_size", base, [this] { return static_cast<double>(size_); });
  registry.expose_gauge("flow_cache_hit_rate", base, [this] { return stats_.hit_rate(); });
}

}  // namespace sdmbox::tables
