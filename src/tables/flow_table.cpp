#include "tables/flow_table.hpp"

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace sdmbox::tables {

FlowTable::FlowTable(SimTime idle_timeout, std::size_t capacity)
    : idle_timeout_(idle_timeout), capacity_(capacity) {
  SDM_CHECK(idle_timeout > 0);
  SDM_CHECK(capacity >= 1);
}

void FlowTable::touch(Slot& slot, SimTime now) {
  slot.entry.last_used = now;
  lru_.splice(lru_.begin(), lru_, slot.lru_pos);
}

void FlowTable::erase_slot(std::unordered_map<packet::FlowId, Slot, KeyHash>::iterator it) {
  if (const std::uint16_t label = it->second.entry.label; label != 0) {
    --live_labels_;
    label_in_use_[label] = false;
  }
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

FlowEntry* FlowTable::lookup(const packet::FlowId& f, SimTime now) {
  auto it = entries_.find(f);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (now - it->second.entry.last_used > idle_timeout_) {
    // Lazy soft-state expiry: the entry died of idleness before this packet.
    erase_slot(it);
    ++stats_.expirations;
    ++stats_.misses;
    return nullptr;
  }
  touch(it->second, now);
  ++stats_.hits;
  if (it->second.entry.is_negative()) ++stats_.negative_hits;
  return &it->second.entry;
}

FlowEntry& FlowTable::insert(const packet::FlowId& f, policy::PolicyId policy,
                             policy::ActionList actions, SimTime now) {
  auto it = entries_.find(f);
  if (it != entries_.end()) {
    if (const std::uint16_t label = it->second.entry.label; label != 0) {
      --live_labels_;
      label_in_use_[label] = false;
    }
    it->second.entry = FlowEntry{f, policy, std::move(actions), 0, false, -1, now};
    touch(it->second, now);
    return it->second.entry;
  }
  if (entries_.size() >= capacity_) evict_for_space();
  lru_.push_front(f);
  auto [pos, inserted] =
      entries_.emplace(f, Slot{FlowEntry{f, policy, std::move(actions), 0, false, -1, now}, lru_.begin()});
  SDM_CHECK(inserted);
  return pos->second.entry;
}

void FlowTable::evict_for_space() {
  SDM_CHECK(!lru_.empty());
  auto it = entries_.find(lru_.back());
  SDM_CHECK(it != entries_.end());
  erase_slot(it);
  ++stats_.evictions;
}

std::uint16_t FlowTable::allocate_label(FlowEntry& entry) {
  SDM_CHECK_MSG(entry.label == 0, "entry already labeled");
  SDM_CHECK_MSG(live_labels_ < 0xffff, "label space exhausted");
  // Labels are locally unique among live entries; 0 is reserved for
  // "no label". Scan the rolling counter forward until a free value; the
  // bitmap makes each probe O(1) and termination follows from
  // live_labels_ < 0xffff.
  for (;;) {
    const std::uint16_t candidate = next_label_;
    next_label_ = static_cast<std::uint16_t>(next_label_ == 0xffff ? 1 : next_label_ + 1);
    if (!label_in_use_[candidate]) {
      label_in_use_[candidate] = true;
      entry.label = candidate;
      ++live_labels_;
      return candidate;
    }
  }
}

bool FlowTable::confirm_label(const packet::FlowId& f, SimTime now) {
  auto it = entries_.find(f);
  if (it == entries_.end()) return false;
  if (now - it->second.entry.last_used > idle_timeout_) {
    erase_slot(it);
    ++stats_.expirations;
    return false;
  }
  touch(it->second, now);
  it->second.entry.label_switched = true;
  return true;
}

bool FlowTable::erase(const packet::FlowId& f) {
  auto it = entries_.find(f);
  if (it == entries_.end()) return false;
  erase_slot(it);
  ++stats_.invalidations;
  return true;
}

void FlowTable::expire_idle(SimTime now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now - it->second.entry.last_used > idle_timeout_) {
      auto victim = it++;
      erase_slot(victim);
      ++stats_.expirations;
    } else {
      ++it;
    }
  }
}

void FlowTable::register_metrics(obs::MetricsRegistry& registry,
                                 const obs::Labels& base) const {
  registry.expose_counter("flow_cache_hits", base, &stats_.hits);
  registry.expose_counter("flow_cache_negative_hits", base, &stats_.negative_hits);
  registry.expose_counter("flow_cache_misses", base, &stats_.misses);
  registry.expose_counter("flow_cache_expirations", base, &stats_.expirations);
  registry.expose_counter("flow_cache_evictions", base, &stats_.evictions);
  registry.expose_counter("flow_cache_invalidations", base, &stats_.invalidations);
  registry.expose_gauge("flow_cache_size", base,
                        [this] { return static_cast<double>(entries_.size()); });
  registry.expose_gauge("flow_cache_hit_rate", base, [this] { return stats_.hit_rate(); });
}

}  // namespace sdmbox::tables
