// Per-middlebox label table (§III.E).
//
// Keyed by ⟨src | l⟩ — the original source address concatenated with the
// proxy-allocated label, which together are network-unique because labels
// are locally unique per proxy and the proxy's address rides the outer IP
// header's source field during chain setup. Each entry stores the action
// list a (and, at the last middlebox of the chain, the original destination
// address dst) so subsequent packets can be label-switched by rewriting the
// destination address instead of being tunneled IP-over-IP.
//
// Storage mirrors FlowTable: a chunked slot slab plus a FlatIndex over the
// cached key hash, so steady-state lookups touch one probe run and allocate
// nothing.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/ip.hpp"
#include "policy/policy.hpp"
#include "tables/flat_index.hpp"
#include "tables/flow_table.hpp"
#include "tables/slab.hpp"
#include "util/hash.hpp"

namespace sdmbox::tables {

struct LabelKey {
  net::IpAddress src;   // original flow source address
  std::uint16_t label;  // proxy-allocated label

  friend constexpr auto operator<=>(const LabelKey&, const LabelKey&) noexcept = default;
};

struct LabelEntry {
  policy::ActionList actions;
  /// Indices in `actions` of the chain segment THIS middlebox performs for
  /// the flow: [first_position, position]. More than one entry when a
  /// consolidated middlebox implements consecutive chain functions. The
  /// next hop serves actions[position + 1].
  std::size_t first_position = 0;
  std::size_t position = 0;

  /// Number of functions this box applies per packet of the flow.
  std::size_t functions_applied() const noexcept { return position - first_position + 1; }
  /// Address of the next middlebox in the chain, chosen when the flow's
  /// first packet passed through tunneled. Label-switched packets have their
  /// destination rewritten hop by hop, so the choice cannot be recomputed
  /// from the packet — it is pinned here. Absent at the chain tail.
  std::optional<net::IpAddress> next_hop;
  /// Original destination; present only at the last middlebox of the chain.
  std::optional<net::IpAddress> final_dst;
  SimTime last_used = 0;
  /// Address of the proxy that set the chain up (outer source during setup).
  /// Lets a middlebox send kLabelTeardown back when the pinned next hop
  /// stops answering, so the proxy re-establishes the flow elsewhere.
  net::IpAddress proxy_addr;

  bool is_chain_tail() const noexcept { return final_dst.has_value(); }
};

struct LabelTableStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t expirations = 0;
  std::uint64_t invalidations = 0;  // entries dropped by invalidate_next_hop()/erase()
};

class LabelTable {
public:
  explicit LabelTable(SimTime idle_timeout = 30.0);

  /// The table's bucketing hash for `key`; see FlowTable::hash_of.
  static std::uint64_t hash_of(const LabelKey& key) noexcept {
    return util::hash_combine(util::mix64(key.src.value()), key.label);
  }

  /// Insert or overwrite the entry for `key`. `hash` must equal hash_of(key).
  LabelEntry& insert(const LabelKey& key, LabelEntry entry, SimTime now) {
    return insert(key, hash_of(key), std::move(entry), now);
  }
  LabelEntry& insert(const LabelKey& key, std::uint64_t hash, LabelEntry entry, SimTime now);

  /// Lookup with soft-state expiry; nullptr on miss. The returned pointer is
  /// invalidated by the next non-const call.
  LabelEntry* lookup(const LabelKey& key, SimTime now) { return lookup(key, hash_of(key), now); }
  LabelEntry* lookup(const LabelKey& key, std::uint64_t hash, SimTime now);

  void expire_idle(SimTime now);

  /// Drop the entry for `key` if present. Returns true when erased.
  bool erase(const LabelKey& key);

  /// Drop every entry whose pinned next hop is `next_hop` (that middlebox
  /// stopped answering). Returns the removed entries so the caller can send
  /// kLabelTeardown to each entry's proxy.
  std::vector<std::pair<LabelKey, LabelEntry>> invalidate_next_hop(net::IpAddress next_hop);

  std::size_t size() const noexcept { return size_; }
  const LabelTableStats& stats() const noexcept { return stats_; }

  /// Expose this table's counters as label_table_* registry views under
  /// `base` labels.
  void register_metrics(obs::MetricsRegistry& registry, const obs::Labels& base) const;

private:
  static constexpr std::uint32_t kNil = FlatIndex::kNil;

  /// Slab slot: key + entry + cached hash. A dead slot's `free_next` chains
  /// the LIFO free list.
  struct Slot {
    LabelKey key{};
    LabelEntry entry;
    std::uint64_t hash = 0;
    std::uint32_t free_next = kNil;
    bool live = false;
  };

  std::uint32_t find_slot(const LabelKey& key, std::uint64_t hash) const noexcept;
  void erase_slot(std::uint32_t idx);

  SimTime idle_timeout_;
  FlatIndex index_;
  StableSlab<Slot> slots_;  // chunked: entry references survive later inserts
  std::uint32_t free_head_ = kNil;
  std::size_t size_ = 0;
  LabelTableStats stats_;
};

}  // namespace sdmbox::tables
