// Open-addressing hash index shared by the flat flow/label tables.
//
// Maps a precomputed 64-bit hash to a 32-bit slot id in the owner's slab.
// The index stores nothing about the keys themselves: on lookup the caller
// supplies an equality predicate over slot ids, so one implementation serves
// any slab layout. Linear probing over a power-of-two bucket array keeps
// probes sequential in memory; deletion uses backward-shift (no tombstones),
// so probe chains never degrade with churn and a table that stops growing
// stops allocating entirely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace sdmbox::tables {

class FlatIndex {
public:
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  FlatIndex() { buckets_.resize(kMinBuckets); }

  /// Slot id stored under `hash` for which `eq(slot)` holds, or kNil. `eq`
  /// is only consulted on full 64-bit hash equality, so it runs at most a
  /// handful of times per lookup even on long probe chains.
  template <typename Eq>
  std::uint32_t find(std::uint64_t hash, Eq&& eq) const noexcept {
    const std::size_t mask = buckets_.size() - 1;
    for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
      const Bucket& b = buckets_[i];
      if (b.slot == kNil) return kNil;
      if (b.hash == hash && eq(b.slot)) return b.slot;
    }
  }

  /// Record `slot` under `hash`. The caller guarantees the (hash, slot) pair
  /// is not already present (slot ids are unique in the owner's slab).
  void insert(std::uint64_t hash, std::uint32_t slot) {
    if ((size_ + 1) * 4 > buckets_.size() * 3) grow();
    place(hash, slot);
    ++size_;
  }

  /// Remove the entry for (hash, slot), backward-shifting the probe chain.
  /// The pair must be present.
  void erase(std::uint64_t hash, std::uint32_t slot) noexcept {
    const std::size_t mask = buckets_.size() - 1;
    std::size_t i = hash & mask;
    while (buckets_[i].slot != slot) {
      SDM_DCHECK(buckets_[i].slot != kNil);
      i = (i + 1) & mask;
    }
    // Backward shift: each following bucket moves into the hole iff doing so
    // does not lift it above its ideal position (cyclic-distance test).
    for (std::size_t j = (i + 1) & mask; buckets_[j].slot != kNil; j = (j + 1) & mask) {
      const std::size_t ideal = buckets_[j].hash & mask;
      if (((j - ideal) & mask) >= ((j - i) & mask)) {
        buckets_[i] = buckets_[j];
        i = j;
      }
    }
    buckets_[i].slot = kNil;
    --size_;
  }

  void clear() noexcept {
    for (Bucket& b : buckets_) b.slot = kNil;
    size_ = 0;
  }

  std::size_t size() const noexcept { return size_; }

private:
  static constexpr std::size_t kMinBuckets = 16;  // power of two

  struct Bucket {
    std::uint64_t hash = 0;
    std::uint32_t slot = kNil;
  };

  void place(std::uint64_t hash, std::uint32_t slot) noexcept {
    const std::size_t mask = buckets_.size() - 1;
    std::size_t i = hash & mask;
    while (buckets_[i].slot != kNil) i = (i + 1) & mask;
    buckets_[i] = Bucket{hash, slot};
  }

  void grow() {
    std::vector<Bucket> old = std::move(buckets_);
    buckets_.assign(old.size() * 2, Bucket{});
    for (const Bucket& b : old) {
      if (b.slot != kNil) place(b.hash, b.slot);
    }
  }

  std::vector<Bucket> buckets_;
  std::size_t size_ = 0;
};

}  // namespace sdmbox::tables
