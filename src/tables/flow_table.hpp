// Per-node flow cache (§III.D) with label-switching state (§III.E).
//
// Stores ⟨f, a⟩ pairs keyed by 5-tuple so that only the first packet of a
// flow pays for multi-field classification. Three refinements from the
// paper, all implemented here:
//  * negative caching — a flow that matches no policy is cached with a null
//    action so later packets skip the policy table entirely;
//  * soft state — entries expire after `idle_timeout` without a hit;
//  * label switching — proxy-side entries carry a locally unique label and a
//    "switched" flag set when the last middlebox's confirmation arrives.
//
// Bounded capacity with least-recently-used eviction protects the middlebox
// from state exhaustion under flow churn (the paper leaves sizing open; a
// production table must bound memory).
//
// Storage is a chunked slab of entry slots (stable addresses — see
// StableSlab) plus a FlatIndex mapping the cached
// 64-bit FlowId hash to slot ids. The LRU list is intrusive — slot-index
// prev/next fields inside the slab — so a hit is one probe run and two index
// rewires with no node allocation anywhere: at steady state (slab warmed,
// index below its load limit) the table performs zero heap operations per
// packet. Callers that already hold the flow's hash (agents compute it once
// per packet) use the hash-taking overloads to skip rehashing.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "packet/packet.hpp"
#include "policy/policy.hpp"
#include "tables/flat_index.hpp"
#include "tables/slab.hpp"

namespace sdmbox::obs {
class MetricsRegistry;
class Labels;
}  // namespace sdmbox::obs

namespace sdmbox::tables {

/// Simulation time in seconds.
using SimTime = double;

struct FlowEntry {
  packet::FlowId flow;
  /// Matched policy, or invalid for a negative (null-action) entry.
  policy::PolicyId policy;
  /// Copy of the matched action list (empty for permit and negative entries).
  policy::ActionList actions;
  /// Locally unique label allocated by the proxy; 0 when unused.
  std::uint16_t label = 0;
  /// Set when the label-switching confirmation control packet arrived.
  bool label_switched = false;
  /// Free annotation slot for the owning agent (the proxy caches the flow's
  /// destination-subnet index here for measurement reporting). -1 = unset.
  std::int32_t user_tag = -1;
  SimTime last_used = 0;
  /// Topology node the flow's packets are currently tunneled to (the first
  /// middlebox of its chain), recorded by the proxy on each send so the
  /// entry can be invalidated when that box is locally blacklisted.
  /// net::NodeId::kInvalid when not tracked.
  std::uint32_t next_hop_node = 0xffffffffu;

  bool is_negative() const noexcept { return !policy.valid(); }
};

struct FlowTableStats {
  std::uint64_t hits = 0;
  std::uint64_t negative_hits = 0;  // subset of hits landing on null entries
  std::uint64_t misses = 0;
  std::uint64_t expirations = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;  // entries dropped by erase()/invalidate_where()

  double hit_rate() const noexcept {
    const double total = static_cast<double>(hits + misses);
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class FlowTable {
public:
  /// idle_timeout: seconds an entry may go unreferenced before expiring.
  /// capacity: maximum live entries; LRU eviction beyond that.
  explicit FlowTable(SimTime idle_timeout = 30.0, std::size_t capacity = 1 << 20);

  /// The table's bucketing hash for `f`. Callers touching the table more
  /// than once per packet (lookup-then-insert on miss) compute it once and
  /// pass it to the hash-taking overloads below.
  static std::uint64_t hash_of(const packet::FlowId& f) noexcept { return f.hash(kHashSeed); }

  /// Look up `f` at time `now`. Refreshes last_used on hit; lazily expires
  /// and miss-counts entries idle past the timeout. The returned pointer is
  /// invalidated by the next non-const call.
  FlowEntry* lookup(const packet::FlowId& f, SimTime now) { return lookup(f, hash_of(f), now); }
  FlowEntry* lookup(const packet::FlowId& f, std::uint64_t hash, SimTime now);

  /// Insert (or overwrite) an entry; returns it. `policy` invalid + empty
  /// actions makes a negative entry. Allocates no label — see
  /// allocate_label(). `hash` must equal hash_of(f). Slots never move, so
  /// the reference stays valid until the entry is erased or evicted.
  FlowEntry& insert(const packet::FlowId& f, policy::PolicyId policy, policy::ActionList actions,
                    SimTime now) {
    return insert(f, hash_of(f), policy, std::move(actions), now);
  }
  FlowEntry& insert(const packet::FlowId& f, std::uint64_t hash, policy::PolicyId policy,
                    policy::ActionList actions, SimTime now);

  /// Assign a locally unique non-zero label to an existing entry (proxy-side,
  /// first packet of a flow under label switching). Returns the label.
  std::uint16_t allocate_label(FlowEntry& entry);

  /// Mark the entry for `f` as label-switched (confirmation received).
  /// Returns false if the entry is gone (expired — the confirmation is then
  /// simply dropped, as the paper's soft-state design implies).
  bool confirm_label(const packet::FlowId& f, SimTime now);

  /// Proactively drop all entries idle past the timeout.
  void expire_idle(SimTime now);

  /// Drop the entry for `f` if present (failure invalidation / label
  /// teardown). Returns true when something was erased.
  bool erase(const packet::FlowId& f);

  /// Drop every entry matching `pred` (e.g. all flows pinned to a failed
  /// middlebox). Returns the number of entries erased. Erasing never moves
  /// live slots, so the slab walk is safe against the erasures it performs.
  template <typename Pred>
  std::size_t invalidate_where(Pred&& pred) {
    std::size_t erased = 0;
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].live && pred(slots_[i].entry)) {
        erase_slot(i);
        ++stats_.invalidations;
        ++erased;
      }
    }
    return erased;
  }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }
  SimTime idle_timeout() const noexcept { return idle_timeout_; }
  const FlowTableStats& stats() const noexcept { return stats_; }

  /// Expose this table's counters as flow_cache_* registry views under
  /// `base` labels (the stats struct stays the hot-path storage).
  void register_metrics(obs::MetricsRegistry& registry, const obs::Labels& base) const;

private:
  static constexpr std::uint64_t kHashSeed = 0x7ab1e5;  // "table(s)"
  static constexpr std::uint32_t kNil = FlatIndex::kNil;

  /// Slab slot: the entry, its cached bucketing hash, and the intrusive LRU
  /// links. A dead slot reuses `lru_next` as its free-list link.
  struct Slot {
    FlowEntry entry;
    std::uint64_t hash = 0;
    std::uint32_t lru_prev = kNil;
    std::uint32_t lru_next = kNil;
    bool live = false;
  };

  std::uint32_t find_slot(const packet::FlowId& f, std::uint64_t hash) const noexcept;
  void lru_unlink(std::uint32_t idx) noexcept;
  void lru_push_front(std::uint32_t idx) noexcept;
  void touch(std::uint32_t idx, SimTime now) noexcept;
  void erase_slot(std::uint32_t idx);
  void evict_for_space();

  SimTime idle_timeout_;
  std::size_t capacity_;
  FlatIndex index_;
  StableSlab<Slot> slots_;  // chunked: entry references survive later inserts
  std::uint32_t free_head_ = kNil;   // LIFO free list through lru_next
  std::uint32_t lru_head_ = kNil;    // most recently used
  std::uint32_t lru_tail_ = kNil;    // least recently used (eviction victim)
  std::size_t size_ = 0;
  std::uint16_t next_label_ = 1;
  std::uint64_t live_labels_ = 0;
  std::vector<bool> label_in_use_ = std::vector<bool>(1 << 16, false);
  FlowTableStats stats_;
};

}  // namespace sdmbox::tables
