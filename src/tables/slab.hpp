// Chunked slot slab with stable addresses.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace sdmbox::tables {

/// Append-only slab of default-constructed slots addressed by dense
/// std::uint32_t indices. Storage is fixed-size chunks, so growing never
/// moves existing slots — callers may keep references across later push()
/// calls, the contract FlowTable::insert's returned FlowEntry& inherits from
/// the node-based tables it replaced. A chunk is allocated only when the
/// slab outgrows the last one; at steady state (the owner recycles indices
/// through its free list) a slab performs no heap operations.
template <typename T>
class StableSlab {
 public:
  std::uint32_t size() const noexcept { return size_; }

  T& operator[](std::uint32_t i) noexcept { return chunks_[i >> kChunkBits][i & kChunkMask]; }
  const T& operator[](std::uint32_t i) const noexcept {
    return chunks_[i >> kChunkBits][i & kChunkMask];
  }

  /// Append a default-constructed slot; returns its index.
  std::uint32_t push() {
    // size_ only grows (clear() aside), so a fresh chunk is needed exactly
    // when the next index points one past the last allocated chunk.
    if ((size_ >> kChunkBits) == chunks_.size()) {
      chunks_.push_back(std::make_unique<T[]>(kChunkSize));
    }
    return size_++;
  }

  void clear() noexcept {
    chunks_.clear();
    size_ = 0;
  }

 private:
  static constexpr std::uint32_t kChunkBits = 8;  // 256 slots per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkBits;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  std::vector<std::unique_ptr<T[]>> chunks_;
  std::uint32_t size_ = 0;
};

}  // namespace sdmbox::tables
