#include "workload/traffic_matrix.hpp"

#include <algorithm>

namespace sdmbox::workload {

void TrafficMatrix::add_sample(policy::PolicyId p, int src_subnet, int dst_subnet,
                               double volume) {
  if (volume <= 0) return;
  total_[key1(p)] += volume;
  from_[key2(p, src_subnet)] += volume;
  to_[key2(p, dst_subnet)] += volume;
  pair_[key3(p, src_subnet, dst_subnet)] += volume;
  grand_total_ += volume;
}

TrafficMatrix TrafficMatrix::measure(const policy::PolicyList& policies,
                                     std::span<const FlowRecord> flows,
                                     const MeasureOptions& options) {
  const double rate = options.sample_rate;
  SDM_CHECK_MSG(rate > 0 && rate <= 1.0, "sampling rate must be in (0, 1]");
  const bool sampled = rate < 1.0;
  const auto threshold =
      static_cast<std::uint64_t>(rate * static_cast<double>(~std::uint64_t{0}));
  TrafficMatrix tm;
  for (const FlowRecord& f : flows) {
    if (sampled && f.id.hash(0x5a3f1e ^ options.seed) > threshold) continue;  // not sampled
    const policy::Policy* p = policies.first_match(f.id);
    if (p == nullptr) continue;
    tm.add_sample(p->id, f.src_subnet, f.dst_subnet, static_cast<double>(f.packets) / rate);
  }
  return tm;
}

std::vector<int> TrafficMatrix::active_sources(policy::PolicyId p) const {
  std::vector<int> out;
  for (const auto& [k, v] : from_) {
    if ((k >> 24) == p.v && v > 0) out.push_back(static_cast<int>(k & 0xffffff));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> TrafficMatrix::active_destinations(policy::PolicyId p) const {
  std::vector<int> out;
  for (const auto& [k, v] : to_) {
    if ((k >> 24) == p.v && v > 0) out.push_back(static_cast<int>(k & 0xffffff));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<int, int>> TrafficMatrix::active_pairs(policy::PolicyId p) const {
  std::vector<std::pair<int, int>> out;
  for (const auto& [k, v] : pair_) {
    if ((k >> 48) == p.v && v > 0) {
      out.emplace_back(static_cast<int>((k >> 24) & 0xffffff), static_cast<int>(k & 0xffffff));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sdmbox::workload
