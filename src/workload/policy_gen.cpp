#include "workload/policy_gen.hpp"

#include <algorithm>

namespace sdmbox::workload {

using policy::FunctionId;

GeneratedPolicies generate_policies(const net::GeneratedNetwork& network,
                                    const PolicyGenParams& params, util::Rng& rng) {
  SDM_CHECK(!network.subnets.empty());
  GeneratedPolicies out;
  const std::size_t subnet_count = network.subnets.size();

  // Service ports are unique per policy so the three classes never overlap:
  // a flow generated for one policy matches exactly that policy. Web policies
  // share port 80 but are disjoint by source subnet.
  std::uint16_t next_service_port = params.first_service_port;

  // (1) many-to-one: protect a service at a random destination subnet from
  // all sources. Action list FW -> IDS -> WP (§IV.A packet assignment).
  for (std::size_t i = 0; i < params.many_to_one; ++i) {
    const std::size_t dst = rng.pick_index(subnet_count);
    policy::TrafficDescriptor td;
    td.dst = network.subnets[dst];
    td.dst_port = policy::PortRange::exactly(next_service_port++);
    const policy::PolicyId id = out.policies.add(
        td, {policy::kFirewall, policy::kIntrusionDetection, policy::kWebProxy},
        "mto" + std::to_string(i));
    out.classes.push_back(PolicyClassInfo{id, PolicyClass::kManyToOne, -1,
                                          static_cast<int>(dst)});
  }

  // (2) one-to-many: http from a random source subnet to anywhere.
  // Action list FW -> IDS. Source subnets are drawn without replacement:
  // two web policies on the same subnet would be first-match duplicates and
  // distort the intended class proportions.
  SDM_CHECK_MSG(params.one_to_many <= subnet_count,
                "more one-to-many policies than subnets");
  const std::vector<std::size_t> otm_subnets =
      rng.sample_without_replacement(subnet_count, params.one_to_many);
  for (std::size_t i = 0; i < params.one_to_many; ++i) {
    const std::size_t src = otm_subnets[i];
    policy::TrafficDescriptor td;
    td.src = network.subnets[src];
    td.dst_port = policy::PortRange::exactly(80);
    const policy::PolicyId id =
        out.policies.add(td, {policy::kFirewall, policy::kIntrusionDetection},
                         "otm" + std::to_string(i));
    out.classes.push_back(PolicyClassInfo{id, PolicyClass::kOneToMany,
                                          static_cast<int>(src), -1});
    if (params.web_return_companions) {
      // Companion many-to-one policy for the return web traffic (§IV.A):
      // reversed chain, matching src port 80 toward the client subnet.
      policy::TrafficDescriptor back;
      back.dst = network.subnets[src];
      back.src_port = policy::PortRange::exactly(80);
      const policy::PolicyId cid =
          out.policies.add(back, {policy::kIntrusionDetection, policy::kFirewall},
                           "otm" + std::to_string(i) + "-return");
      out.classes.push_back(PolicyClassInfo{cid, PolicyClass::kWebReturn, -1,
                                            static_cast<int>(src)});
    }
  }

  // (3) one-to-one: investigate traffic between a random pair of subnets.
  // Action list IDS -> TM.
  for (std::size_t i = 0; i < params.one_to_one; ++i) {
    const std::size_t src = rng.pick_index(subnet_count);
    std::size_t dst = rng.pick_index(subnet_count);
    while (dst == src && subnet_count > 1) dst = rng.pick_index(subnet_count);
    policy::TrafficDescriptor td;
    td.src = network.subnets[src];
    td.dst = network.subnets[dst];
    td.dst_port = policy::PortRange::exactly(next_service_port++);
    const policy::PolicyId id = out.policies.add(
        td, {policy::kIntrusionDetection, policy::kTrafficMeasure}, "oto" + std::to_string(i));
    out.classes.push_back(PolicyClassInfo{id, PolicyClass::kOneToOne,
                                          static_cast<int>(src), static_cast<int>(dst)});
  }
  return out;
}

std::vector<const PolicyClassInfo*> GeneratedPolicies::of_class(PolicyClass c) const {
  std::vector<const PolicyClassInfo*> out;
  for (const PolicyClassInfo& info : classes) {
    if (info.cls == c) out.push_back(&info);
  }
  return out;
}

}  // namespace sdmbox::workload
