// Traffic measurements reported by the policy proxies (§III.C).
//
// The controller's LPs consume per-policy volumes at three granularities:
//   T_p       — total volume matching policy p,
//   T_{s,p}   — volume from source subnet s matching p,
//   T_{d,p}   — volume received by destination subnet d matching p,
//   T_{s,d,p} — volume from s to d matching p (Eq. (1) only).
// Volumes are in packets, matching the paper's load metric.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "policy/policy.hpp"
#include "workload/flow_gen.hpp"

namespace sdmbox::workload {

/// How measure() samples a flow set. Defaults count every flow; a
/// sample_rate below 1 turns on the classic NetFlow-style estimator: keep
/// each flow with probability sample_rate (deterministic per 5-tuple hash
/// and seed) and scale kept volumes by 1/sample_rate — what a proxy does
/// when it cannot afford to count every flow.
struct MeasureOptions {
  double sample_rate = 1.0;  // in (0, 1]
  std::uint64_t seed = 0;    // sampler hash seed
};

class TrafficMatrix {
public:
  /// Measure a flow set against a policy list (first-match). Flows matching
  /// no policy contribute nothing. This is what the proxies would report in
  /// aggregate over a measurement period.
  static TrafficMatrix measure(const policy::PolicyList& policies,
                               std::span<const FlowRecord> flows,
                               const MeasureOptions& options = {});

  /// Accumulate one measured sample — the control plane assembles the
  /// matrix from proxy reports via this (each report line is "policy p,
  /// from my subnet s, toward subnet d, v packets").
  void add_sample(policy::PolicyId p, int src_subnet, int dst_subnet, double volume);

  double total(policy::PolicyId p) const { return get(total_, key1(p)); }
  double from(policy::PolicyId p, int src_subnet) const { return get(from_, key2(p, src_subnet)); }
  double to(policy::PolicyId p, int dst_subnet) const { return get(to_, key2(p, dst_subnet)); }
  double between(policy::PolicyId p, int src_subnet, int dst_subnet) const {
    return get(pair_, key3(p, src_subnet, dst_subnet));
  }

  /// Source subnets with nonzero T_{s,p}, ascending.
  std::vector<int> active_sources(policy::PolicyId p) const;
  /// Destination subnets with nonzero T_{d,p}, ascending.
  std::vector<int> active_destinations(policy::PolicyId p) const;
  /// (s, d) pairs with nonzero T_{s,d,p}, lexicographic.
  std::vector<std::pair<int, int>> active_pairs(policy::PolicyId p) const;

  /// Sum of T_p over all policies.
  double grand_total() const noexcept { return grand_total_; }

private:
  static std::uint64_t key1(policy::PolicyId p) noexcept { return p.v; }
  static std::uint64_t key2(policy::PolicyId p, int subnet) noexcept {
    return (std::uint64_t{p.v} << 24) | static_cast<std::uint32_t>(subnet);
  }
  static std::uint64_t key3(policy::PolicyId p, int s, int d) noexcept {
    return (std::uint64_t{p.v} << 48) | (static_cast<std::uint64_t>(s) << 24) |
           static_cast<std::uint32_t>(d);
  }
  static double get(const std::unordered_map<std::uint64_t, double>& m, std::uint64_t k) {
    const auto it = m.find(k);
    return it == m.end() ? 0.0 : it->second;
  }

  std::unordered_map<std::uint64_t, double> total_;
  std::unordered_map<std::uint64_t, double> from_;
  std::unordered_map<std::uint64_t, double> to_;
  std::unordered_map<std::uint64_t, double> pair_;
  double grand_total_ = 0;
};

}  // namespace sdmbox::workload
