// Generation of the paper's three policy classes (§IV.A).
//
//  * many-to-one — protect a service at one destination subnet from all
//    sources; action list FW -> IDS -> WP.
//  * one-to-many — http from one source subnet to anywhere; FW -> IDS
//    (optionally with the companion return-traffic policy the paper
//    describes, chain reversed).
//  * one-to-one  — traffic between a chosen pair of subnets; IDS -> TM.
//
// Note: §IV.A's prose and its final traffic-assignment sentence disagree on
// which of the first two classes carries WP; we follow the traffic
// assignment actually simulated ("one third to the many-to-one policy class
// (with the action list being FW -> IDS -> WP)"). Policies get pairwise
// disjoint descriptors (unique service ports; web policies disjoint by
// subnet) so intended class proportions survive first-match semantics.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topologies.hpp"
#include "policy/policy.hpp"
#include "util/rng.hpp"

namespace sdmbox::workload {

enum class PolicyClass : std::uint8_t {
  kManyToOne,
  kOneToMany,
  kOneToOne,
  kWebReturn,  // companion of a one-to-many policy
};

struct PolicyClassInfo {
  policy::PolicyId id;
  PolicyClass cls;
  /// Fixed source subnet index, or -1 for wildcard.
  int src_subnet = -1;
  /// Fixed destination subnet index, or -1 for wildcard.
  int dst_subnet = -1;
};

struct GeneratedPolicies {
  policy::PolicyList policies;
  std::vector<PolicyClassInfo> classes;  // parallel to policies (list order)

  std::vector<const PolicyClassInfo*> of_class(PolicyClass c) const;
};

struct PolicyGenParams {
  std::size_t many_to_one = 4;
  std::size_t one_to_many = 4;
  std::size_t one_to_one = 4;
  bool web_return_companions = false;
  std::uint16_t first_service_port = 1000;
};

GeneratedPolicies generate_policies(const net::GeneratedNetwork& network,
                                    const PolicyGenParams& params, util::Rng& rng);

}  // namespace sdmbox::workload
