// Streaming flow synthesis for ISP-scale worlds.
//
// generate_flows() materializes the whole flow set — fine at 30k flows,
// hopeless at the 10k-router scales examples/waxman_scale builds, where the
// flow list alone would dwarf the topology. FlowStream produces the SAME
// flow sequence one record at a time: it consumes the caller's Rng in
// exactly the order the batch generator does (the web-return companion is
// derived from its forward flow without further draws, so it can be held
// back in a one-slot buffer), which makes stream-vs-batch equivalence an
// exact, testable contract. Peak residency is O(1) — the current record
// plus at most one pending companion — regardless of how many flows the
// stream emits.
#pragma once

#include <cstdint>

#include "workload/flow_gen.hpp"
#include "workload/traffic_matrix.hpp"

namespace sdmbox::workload {

class FlowStream {
public:
  /// Upper bound on FlowRecords the stream ever holds at once (the record
  /// being emitted + one buffered web-return companion). The residency test
  /// pins this: streaming never becomes O(total flows).
  static constexpr std::size_t kMaxResident = 2;

  /// `network`, `policies` and `rng` must outlive the stream. The rng is
  /// advanced exactly as generate_flows(params) would advance it.
  FlowStream(const net::GeneratedNetwork& network, const GeneratedPolicies& policies,
             const FlowGenParams& params, util::Rng& rng);

  /// Produce the next flow; false when the stream is exhausted (the batch
  /// generator's stopping rule: policy packets reached the target, then the
  /// background tail).
  bool next(FlowRecord& out);

  std::uint64_t emitted() const noexcept { return emitted_; }
  std::uint64_t total_packets() const noexcept { return total_packets_; }
  std::uint64_t background_packets() const noexcept { return background_packets_; }
  /// High-water mark of resident FlowRecords (<= kMaxResident by design).
  std::size_t peak_resident() const noexcept { return peak_resident_; }

private:
  FlowRecord make_main_flow();
  FlowRecord make_background_flow();

  const net::GeneratedNetwork& network_;
  const GeneratedPolicies& policies_;
  FlowGenParams params_;
  util::Rng& rng_;

  std::vector<const PolicyClassInfo*> pools_[3];
  double weight_total_ = 0;

  enum class Phase : std::uint8_t { kMain, kBackground, kDone };
  Phase phase_ = Phase::kMain;
  FlowRecord pending_;  // web-return companion awaiting emission
  bool has_pending_ = false;
  std::uint64_t emitted_ = 0;
  std::uint64_t main_flow_count_ = 0;  // batch out.flows.size() before background
  std::uint64_t background_target_ = 0;
  std::uint64_t background_emitted_ = 0;
  std::uint64_t total_packets_ = 0;
  std::uint64_t background_packets_ = 0;
  std::size_t peak_resident_ = 0;
};

/// Measure a whole stream into a TrafficMatrix without ever materializing
/// the flow list: the streaming twin of TrafficMatrix::measure, same
/// sampling recipe, byte-identical totals for the same flow sequence.
TrafficMatrix measure_stream(const policy::PolicyList& policies, FlowStream& stream,
                             const MeasureOptions& options = {});

}  // namespace sdmbox::workload
