#include "workload/stream_gen.hpp"

#include <algorithm>

namespace sdmbox::workload {

namespace {

// Mirrors of flow_gen.cpp's draw helpers: the streaming contract is "same
// Rng consumption, same order", so these must stay in lockstep with the
// batch generator.
net::IpAddress random_host(const net::Prefix& subnet, util::Rng& rng) {
  const std::uint32_t span = (1u << (32 - subnet.length())) - 4;
  return net::IpAddress(subnet.base().value() + 2 +
                        static_cast<std::uint32_t>(rng.next_below(span)));
}

std::uint16_t ephemeral_port(util::Rng& rng) {
  return static_cast<std::uint16_t>(49152 + rng.next_below(16384));
}

}  // namespace

FlowStream::FlowStream(const net::GeneratedNetwork& network, const GeneratedPolicies& policies,
                       const FlowGenParams& params, util::Rng& rng)
    : network_(network), policies_(policies), params_(params), rng_(rng) {
  SDM_CHECK(params.min_flow_packets >= 1);
  SDM_CHECK(params.min_flow_packets <= params.max_flow_packets);
  SDM_CHECK(network.subnets.size() >= 2);
  pools_[0] = policies.of_class(PolicyClass::kManyToOne);
  pools_[1] = policies.of_class(PolicyClass::kOneToMany);
  pools_[2] = policies.of_class(PolicyClass::kOneToOne);
  SDM_CHECK_MSG(!pools_[0].empty() && !pools_[1].empty() && !pools_[2].empty(),
                "flow generation needs at least one policy of each class");
  weight_total_ = params.class_weights[0] + params.class_weights[1] + params.class_weights[2];
  SDM_CHECK_MSG(weight_total_ > 0 && params.class_weights[0] >= 0 &&
                    params.class_weights[1] >= 0 && params.class_weights[2] >= 0,
                "class weights must be non-negative with a positive sum");
  if (params.target_total_packets == 0) phase_ = Phase::kBackground;
}

FlowRecord FlowStream::make_main_flow() {
  const std::size_t subnet_count = network_.subnets.size();
  double r = rng_.next_double() * weight_total_;
  std::size_t cls = 0;
  while (cls < 2 && r >= params_.class_weights[cls]) {
    r -= params_.class_weights[cls];
    ++cls;
  }
  const auto& pool = pools_[cls];
  const PolicyClassInfo& info = *pool[rng_.pick_index(pool.size())];
  const policy::Policy& pol = policies_.policies.at(info.id);

  FlowRecord f;
  f.intended = info.id;
  f.dst_subnet = info.dst_subnet >= 0 ? info.dst_subnet
                                      : static_cast<int>(rng_.pick_index(subnet_count));
  if (info.src_subnet >= 0) {
    f.src_subnet = info.src_subnet;
  } else {
    do {
      f.src_subnet = static_cast<int>(rng_.pick_index(subnet_count));
    } while (f.src_subnet == f.dst_subnet && subnet_count > 1);
  }
  if (info.dst_subnet < 0) {
    while (f.dst_subnet == f.src_subnet && subnet_count > 1) {
      f.dst_subnet = static_cast<int>(rng_.pick_index(subnet_count));
    }
  }
  f.id.src = random_host(network_.subnets[static_cast<std::size_t>(f.src_subnet)], rng_);
  f.id.dst = random_host(network_.subnets[static_cast<std::size_t>(f.dst_subnet)], rng_);
  f.id.dst_port = pol.descriptor.dst_port.is_wildcard() ? ephemeral_port(rng_)
                                                        : pol.descriptor.dst_port.lo;
  f.id.src_port = pol.descriptor.src_port.is_wildcard() ? ephemeral_port(rng_)
                                                        : pol.descriptor.src_port.lo;
  f.id.protocol = packet::kProtoTcp;
  f.packets = rng_.next_power_law(params_.min_flow_packets, params_.max_flow_packets,
                                  params_.power_law_alpha);
  total_packets_ += f.packets;
  SDM_DCHECK(policies_.policies.first_match(f.id) == &pol);

  if (params_.web_return_traffic && info.cls == PolicyClass::kOneToMany) {
    FlowRecord back;
    back.id.src = f.id.dst;
    back.id.dst = f.id.src;
    back.id.src_port = f.id.dst_port;  // 80
    back.id.dst_port = f.id.src_port;
    back.id.protocol = f.id.protocol;
    back.src_subnet = f.dst_subnet;
    back.dst_subnet = f.src_subnet;
    back.packets = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(f.packets) *
                                      params_.web_return_scale));
    const policy::Policy* return_pol = policies_.policies.first_match(back.id);
    SDM_CHECK_MSG(return_pol != nullptr,
                  "web_return_traffic needs companion policies "
                  "(PolicyGenParams::web_return_companions)");
    back.intended = return_pol->id;
    total_packets_ += back.packets;
    pending_ = back;
    has_pending_ = true;
  }
  return f;
}

FlowRecord FlowStream::make_background_flow() {
  const std::size_t subnet_count = network_.subnets.size();
  FlowRecord f;
  f.src_subnet = static_cast<int>(rng_.pick_index(subnet_count));
  do {
    f.dst_subnet = static_cast<int>(rng_.pick_index(subnet_count));
  } while (f.dst_subnet == f.src_subnet && subnet_count > 1);
  f.id.src = random_host(network_.subnets[static_cast<std::size_t>(f.src_subnet)], rng_);
  f.id.dst = random_host(network_.subnets[static_cast<std::size_t>(f.dst_subnet)], rng_);
  f.id.dst_port = static_cast<std::uint16_t>(40000 + rng_.next_below(9000));
  f.id.src_port = ephemeral_port(rng_);
  f.id.protocol = packet::kProtoUdp;
  f.packets = rng_.next_power_law(params_.min_flow_packets, params_.max_flow_packets,
                                  params_.power_law_alpha);
  background_packets_ += f.packets;
  SDM_DCHECK(policies_.policies.first_match(f.id) == nullptr);
  return f;
}

bool FlowStream::next(FlowRecord& out) {
  if (has_pending_) {
    out = pending_;
    has_pending_ = false;
    ++emitted_;
    ++main_flow_count_;
    return true;
  }
  if (phase_ == Phase::kMain) {
    if (total_packets_ < params_.target_total_packets) {
      out = make_main_flow();
      peak_resident_ = std::max(peak_resident_, has_pending_ ? std::size_t{2} : std::size_t{1});
      ++emitted_;
      ++main_flow_count_;
      return true;
    }
    phase_ = Phase::kBackground;
  }
  if (phase_ == Phase::kBackground) {
    if (background_target_ == 0 && params_.background_flow_fraction > 0) {
      background_target_ = static_cast<std::uint64_t>(
          static_cast<double>(main_flow_count_) * params_.background_flow_fraction);
    }
    if (background_emitted_ < background_target_) {
      out = make_background_flow();
      peak_resident_ = std::max(peak_resident_, std::size_t{1});
      ++background_emitted_;
      ++emitted_;
      return true;
    }
    phase_ = Phase::kDone;
  }
  return false;
}

TrafficMatrix measure_stream(const policy::PolicyList& policies, FlowStream& stream,
                             const MeasureOptions& options) {
  const double rate = options.sample_rate;
  SDM_CHECK_MSG(rate > 0 && rate <= 1.0, "sampling rate must be in (0, 1]");
  const bool sampled = rate < 1.0;
  const auto threshold =
      static_cast<std::uint64_t>(rate * static_cast<double>(~std::uint64_t{0}));
  TrafficMatrix tm;
  FlowRecord f;
  while (stream.next(f)) {
    if (sampled && f.id.hash(0x5a3f1e ^ options.seed) > threshold) continue;
    const policy::Policy* p = policies.first_match(f.id);
    if (p == nullptr) continue;
    tm.add_sample(p->id, f.src_subnet, f.dst_subnet, static_cast<double>(f.packets) / rate);
  }
  return tm;
}

}  // namespace sdmbox::workload
