// Flow synthesis (§IV.A).
//
// Flows are assigned one third to each of the three policy classes; sizes
// follow a bounded discrete power law in [1, 5000] packets. With the default
// alpha = 1.6 the mean flow size is ~33 packets, so the paper's 30k-300k
// flow range spans its stated 1M-10M packet range. Every generated flow's
// 5-tuple is constructed to first-match exactly its intended policy;
// optional background flows match no policy at all (they exercise the
// negative cache of §III.D).
#pragma once

#include <cstdint>
#include <vector>

#include "net/topologies.hpp"
#include "packet/packet.hpp"
#include "util/rng.hpp"
#include "workload/policy_gen.hpp"

namespace sdmbox::workload {

struct FlowRecord {
  packet::FlowId id;
  std::uint64_t packets = 0;
  int src_subnet = -1;  // index into GeneratedNetwork::subnets
  int dst_subnet = -1;
  /// The policy this flow was generated to match; invalid for background
  /// flows. Tests assert first_match agrees with this.
  policy::PolicyId intended;
};

struct FlowGenParams {
  /// Generate flows until their packet total reaches this.
  std::uint64_t target_total_packets = 1'000'000;
  std::uint64_t min_flow_packets = 1;
  std::uint64_t max_flow_packets = 5000;
  double power_law_alpha = 1.6;
  /// Fraction of additional flows (by count) matching no policy.
  double background_flow_fraction = 0.0;
  /// Relative flow-count weights of the three classes {many-to-one,
  /// one-to-many, one-to-one}; the paper's even thirds by default. Drifting
  /// these across measurement epochs models workload change for the
  /// re-optimization study.
  double class_weights[3] = {1.0, 1.0, 1.0};
  /// Generate the RETURN flow for every one-to-many web flow (response from
  /// the server back to the client, source port 80). Requires the policy
  /// set to have been generated with web_return_companions = true, so the
  /// return flows match the companion policies (reversed chain, §IV.A).
  bool web_return_traffic = false;
  /// Response bytes dwarf request bytes on the web; the paper doesn't model
  /// asymmetry, so the default keeps request/response packet counts equal.
  double web_return_scale = 1.0;
};

struct GeneratedFlows {
  std::vector<FlowRecord> flows;
  std::uint64_t total_packets = 0;         // policy-matching packets
  std::uint64_t background_packets = 0;
};

GeneratedFlows generate_flows(const net::GeneratedNetwork& network,
                              const GeneratedPolicies& policies, const FlowGenParams& params,
                              util::Rng& rng);

}  // namespace sdmbox::workload
