#include "workload/flow_gen.hpp"

#include <algorithm>

namespace sdmbox::workload {

namespace {

/// Random host address inside a stub subnet (skipping the proxy at offset 1).
net::IpAddress random_host(const net::Prefix& subnet, util::Rng& rng) {
  const std::uint32_t span = (1u << (32 - subnet.length())) - 4;
  return net::IpAddress(subnet.base().value() + 2 +
                        static_cast<std::uint32_t>(rng.next_below(span)));
}

std::uint16_t ephemeral_port(util::Rng& rng) {
  return static_cast<std::uint16_t>(49152 + rng.next_below(16384));
}

}  // namespace

GeneratedFlows generate_flows(const net::GeneratedNetwork& network,
                              const GeneratedPolicies& policies, const FlowGenParams& params,
                              util::Rng& rng) {
  SDM_CHECK(params.min_flow_packets >= 1);
  SDM_CHECK(params.min_flow_packets <= params.max_flow_packets);
  SDM_CHECK(network.subnets.size() >= 2);

  const auto mto = policies.of_class(PolicyClass::kManyToOne);
  const auto otm = policies.of_class(PolicyClass::kOneToMany);
  const auto oto = policies.of_class(PolicyClass::kOneToOne);
  SDM_CHECK_MSG(!mto.empty() && !otm.empty() && !oto.empty(),
                "flow generation needs at least one policy of each class");
  const std::vector<const PolicyClassInfo*>* class_pools[3] = {&mto, &otm, &oto};

  GeneratedFlows out;
  const std::size_t subnet_count = network.subnets.size();
  const double weight_total =
      params.class_weights[0] + params.class_weights[1] + params.class_weights[2];
  SDM_CHECK_MSG(weight_total > 0 && params.class_weights[0] >= 0 &&
                    params.class_weights[1] >= 0 && params.class_weights[2] >= 0,
                "class weights must be non-negative with a positive sum");

  while (out.total_packets < params.target_total_packets) {
    // Flows split across the classes by weight (§IV.A uses even thirds).
    double r = rng.next_double() * weight_total;
    std::size_t cls = 0;
    while (cls < 2 && r >= params.class_weights[cls]) {
      r -= params.class_weights[cls];
      ++cls;
    }
    const auto& pool = *class_pools[cls];
    const PolicyClassInfo& info = *pool[rng.pick_index(pool.size())];
    const policy::Policy& pol = policies.policies.at(info.id);

    FlowRecord f;
    f.intended = info.id;
    // Source subnet: the policy's fixed subnet, else any subnet other than
    // the destination.
    f.dst_subnet = info.dst_subnet >= 0 ? info.dst_subnet
                                        : static_cast<int>(rng.pick_index(subnet_count));
    if (info.src_subnet >= 0) {
      f.src_subnet = info.src_subnet;
    } else {
      do {
        f.src_subnet = static_cast<int>(rng.pick_index(subnet_count));
      } while (f.src_subnet == f.dst_subnet && subnet_count > 1);
    }
    if (info.dst_subnet < 0) {
      while (f.dst_subnet == f.src_subnet && subnet_count > 1) {
        f.dst_subnet = static_cast<int>(rng.pick_index(subnet_count));
      }
    }
    f.id.src = random_host(network.subnets[static_cast<std::size_t>(f.src_subnet)], rng);
    f.id.dst = random_host(network.subnets[static_cast<std::size_t>(f.dst_subnet)], rng);
    // Ports: land inside the policy's (exact or wildcard) port ranges.
    f.id.dst_port = pol.descriptor.dst_port.is_wildcard() ? ephemeral_port(rng)
                                                          : pol.descriptor.dst_port.lo;
    f.id.src_port = pol.descriptor.src_port.is_wildcard() ? ephemeral_port(rng)
                                                          : pol.descriptor.src_port.lo;
    f.id.protocol = packet::kProtoTcp;
    f.packets = rng.next_power_law(params.min_flow_packets, params.max_flow_packets,
                                   params.power_law_alpha);
    out.total_packets += f.packets;
    out.flows.push_back(f);
    SDM_DCHECK(policies.policies.first_match(f.id) == &pol);

    // Web responses: the reversed 5-tuple matches the one-to-many policy's
    // return companion (src port 80 toward the client subnet).
    if (params.web_return_traffic && info.cls == PolicyClass::kOneToMany) {
      FlowRecord back;
      back.id.src = f.id.dst;
      back.id.dst = f.id.src;
      back.id.src_port = f.id.dst_port;  // 80
      back.id.dst_port = f.id.src_port;
      back.id.protocol = f.id.protocol;
      back.src_subnet = f.dst_subnet;
      back.dst_subnet = f.src_subnet;
      back.packets = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(static_cast<double>(f.packets) *
                                        params.web_return_scale));
      const policy::Policy* return_pol = policies.policies.first_match(back.id);
      SDM_CHECK_MSG(return_pol != nullptr,
                    "web_return_traffic needs companion policies "
                    "(PolicyGenParams::web_return_companions)");
      back.intended = return_pol->id;
      out.total_packets += back.packets;
      out.flows.push_back(back);
    }
  }

  if (params.background_flow_fraction > 0) {
    const auto n_background = static_cast<std::size_t>(
        static_cast<double>(out.flows.size()) * params.background_flow_fraction);
    for (std::size_t i = 0; i < n_background; ++i) {
      FlowRecord f;
      f.src_subnet = static_cast<int>(rng.pick_index(subnet_count));
      do {
        f.dst_subnet = static_cast<int>(rng.pick_index(subnet_count));
      } while (f.dst_subnet == f.src_subnet && subnet_count > 1);
      f.id.src = random_host(network.subnets[static_cast<std::size_t>(f.src_subnet)], rng);
      f.id.dst = random_host(network.subnets[static_cast<std::size_t>(f.dst_subnet)], rng);
      // Destination ports in [40000, 49152) are touched by no generated
      // policy (services sit below 2048, ephemeral ports at 49152+), so
      // these flows match nothing by construction.
      f.id.dst_port = static_cast<std::uint16_t>(40000 + rng.next_below(9000));
      f.id.src_port = ephemeral_port(rng);
      f.id.protocol = packet::kProtoUdp;
      f.packets = rng.next_power_law(params.min_flow_packets, params.max_flow_packets,
                                     params.power_law_alpha);
      out.background_packets += f.packets;
      out.flows.push_back(f);
      SDM_DCHECK(policies.policies.first_match(f.id) == nullptr);
    }
  }
  return out;
}

}  // namespace sdmbox::workload
