// Packet model.
//
// We model exactly the header state the paper's mechanisms manipulate:
//  * an inner IPv4 header (the original packet),
//  * an optional outer IPv4 header added by IP-over-IP tunneling (§III.B) —
//    +20 bytes on the wire, which is what threatens fragmentation,
//  * a 16-bit label carried in reclaimed header fields (ToS byte + the low
//    8 bits of the fragment offset) used by label switching (§III.E),
//  * the 5-tuple FlowId that keys flow tables and the per-flow hash used for
//    probabilistic next-middlebox selection (§III.C).
#pragma once

#include <compare>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/ip.hpp"
#include "util/hash.hpp"

namespace sdmbox::packet {

inline constexpr std::uint32_t kIpv4HeaderBytes = 20;
inline constexpr std::uint32_t kL4HeaderBytes = 8;  // UDP-sized transport header

inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;
inline constexpr std::uint8_t kProtoIpInIp = 4;  // IP-over-IP (RFC 2003)

/// The flow identifier: 5-element tuple from the packet header (§III.D).
struct FlowId {
  net::IpAddress src;
  net::IpAddress dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = kProtoTcp;

  friend constexpr auto operator<=>(const FlowId&, const FlowId&) noexcept = default;

  /// Deterministic 64-bit hash; `seed` lets independent consumers (flow-table
  /// bucketing vs. next-hop selection) draw uncorrelated values.
  std::uint64_t hash(std::uint64_t seed = 0) const noexcept;

  std::string to_string() const;
};

/// Simplified IPv4 header: the fields the enforcement plane reads or writes.
struct Ipv4Header {
  net::IpAddress src;
  net::IpAddress dst;
  std::uint8_t protocol = kProtoTcp;
  std::uint8_t tos = 0;
  std::uint16_t frag_offset = 0;  // 13-bit field in a real header
  std::uint8_t ttl = 64;
};

/// Embed a 16-bit label into the unused header fields (ToS byte + the low 8
/// bits of the fragment offset), as proposed in §III.E.
void set_label(Ipv4Header& h, std::uint16_t label) noexcept;
std::uint16_t get_label(const Ipv4Header& h) noexcept;
void clear_label(Ipv4Header& h) noexcept;
bool has_label(const Ipv4Header& h) noexcept;

enum class PacketKind : std::uint8_t {
  kData,               // ordinary traffic
  kLabelConfirm,       // control packet from last middlebox back to the proxy (§III.E)
  kConfigPush,         // controller -> device: serialized DeviceConfig (§III.A)
  kConfigAck,          // device -> controller: applied version confirmation
  kMeasurementReport,  // proxy -> controller: serialized traffic volumes (§III.C)
  kHeartbeat,          // liveness probe (controller -> device, or peer -> peer)
  kHeartbeatAck,       // probe reply, echoing the probe's control_seq
  kLabelTeardown,      // middlebox -> proxy: a label-switched chain broke; re-establish
};

struct Packet {
  Ipv4Header inner;                  // the original packet header
  std::optional<Ipv4Header> outer;   // IP-over-IP tunnel header, if encapsulated
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t payload_bytes = 0;   // transport payload
  std::uint64_t flow_seq = 0;        // packet index within its flow (diagnostics)
  PacketKind kind = PacketKind::kData;
  /// Control-plane sequence number (kConfigPush/kConfigAck pair it for the
  /// reliable config channel; kHeartbeat/kHeartbeatAck pair probe and reply).
  /// 0 means unsequenced. Modeled as part of the control payload on the wire.
  std::uint64_t control_seq = 0;
  std::optional<FlowId> control_flow;  // flow confirmed/torn down by a control packet
  /// Serialized control-plane payload (kConfigPush / kMeasurementReport).
  /// Shared so forwarding copies stay cheap; its size counts as payload on
  /// the wire (set payload_bytes = control_payload->size()).
  std::shared_ptr<const std::vector<std::uint8_t>> control_payload;
  /// Index into the matched policy's action list of the function the NEXT
  /// middlebox should perform; set by the tunneling sender. The analogue of
  /// a service index in NSH-style service chaining — needed once a
  /// middlebox can implement several functions, since the receiver could
  /// otherwise not tell which of its chain appearances is intended.
  std::uint8_t chain_pos = 0;

  /// 5-tuple of the original (inner) packet.
  FlowId flow_id() const noexcept {
    return FlowId{inner.src, inner.dst, src_port, dst_port, inner.protocol};
  }

  /// The header the network routes on: outer when tunneled, else inner.
  const Ipv4Header& routing_header() const noexcept { return outer ? *outer : inner; }

  /// Bytes on the wire: all IP headers + transport header + payload.
  std::uint32_t wire_bytes() const noexcept {
    return kIpv4HeaderBytes * (outer ? 2 : 1) + kL4HeaderBytes + payload_bytes;
  }

  /// Add an IP-over-IP outer header (tunnel_src -> tunnel_dst). The packet
  /// must not already be encapsulated — the paper never nests tunnels.
  void encapsulate(net::IpAddress tunnel_src, net::IpAddress tunnel_dst);

  /// Strip the outer header; returns the stripped header.
  Ipv4Header decapsulate();
};

/// Number of link-layer fragments a packet of `wire_bytes` needs at `mtu`
/// (each fragment repeats the 20-byte IP header; payload split across
/// 8-byte-aligned chunks as IPv4 requires).
std::uint32_t fragments_needed(std::uint32_t wire_bytes, std::uint32_t mtu) noexcept;

}  // namespace sdmbox::packet
