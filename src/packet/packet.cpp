#include "packet/packet.hpp"

#include "util/check.hpp"

namespace sdmbox::packet {

std::uint64_t FlowId::hash(std::uint64_t seed) const noexcept {
  std::uint64_t h = util::mix64(seed ^ 0x5dee7c0ffee5ULL);
  h = util::hash_combine(h, src.value());
  h = util::hash_combine(h, dst.value());
  h = util::hash_combine(h, (std::uint64_t{src_port} << 32) | std::uint64_t{dst_port});
  h = util::hash_combine(h, protocol);
  return h;
}

std::string FlowId::to_string() const {
  return src.to_string() + ":" + std::to_string(src_port) + "->" + dst.to_string() + ":" +
         std::to_string(dst_port) + "/" + std::to_string(protocol);
}

void set_label(Ipv4Header& h, std::uint16_t label) noexcept {
  h.tos = static_cast<std::uint8_t>(label >> 8);
  h.frag_offset = static_cast<std::uint16_t>((h.frag_offset & 0x1f00u) | (label & 0xffu));
}

std::uint16_t get_label(const Ipv4Header& h) noexcept {
  return static_cast<std::uint16_t>((std::uint16_t{h.tos} << 8) | (h.frag_offset & 0xffu));
}

void clear_label(Ipv4Header& h) noexcept {
  h.tos = 0;
  h.frag_offset = static_cast<std::uint16_t>(h.frag_offset & 0x1f00u);
}

bool has_label(const Ipv4Header& h) noexcept { return get_label(h) != 0; }

void Packet::encapsulate(net::IpAddress tunnel_src, net::IpAddress tunnel_dst) {
  SDM_CHECK_MSG(!outer, "IP-over-IP tunnels do not nest in this design");
  Ipv4Header o;
  o.src = tunnel_src;
  o.dst = tunnel_dst;
  o.protocol = kProtoIpInIp;
  o.ttl = 64;
  outer = o;
}

Ipv4Header Packet::decapsulate() {
  SDM_CHECK_MSG(outer.has_value(), "decapsulate on a packet without an outer header");
  const Ipv4Header o = *outer;
  outer.reset();
  return o;
}

std::uint32_t fragments_needed(std::uint32_t wire_bytes, std::uint32_t mtu) noexcept {
  if (wire_bytes <= mtu) return 1;
  if (mtu <= kIpv4HeaderBytes + 8) return 0;  // unfragmentable: no room for payload
  // Each fragment carries a fresh IP header; payload per fragment is rounded
  // down to a multiple of 8 bytes (IPv4 fragment offsets are in 8-byte units).
  const std::uint32_t payload = wire_bytes - kIpv4HeaderBytes;
  const std::uint32_t per_frag = ((mtu - kIpv4HeaderBytes) / 8) * 8;
  return (payload + per_frag - 1) / per_frag;
}

}  // namespace sdmbox::packet
